// Package analysis provides the statistical toolkit used to regenerate
// the paper's figures: empirical CDFs (Figure 15), percentiles,
// correlation (Figure 16), time binning (Figures 14 and 17), and plain
// text table/series rendering.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the samples.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	pos := q * float64(len(c.sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(c.sorted) {
		return c.sorted[lo]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// Points samples the CDF at n evenly spaced values across the sample
// range, for plotting (x, P(X≤x)).
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n < 2 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out = append(out, [2]float64{x, c.At(x)})
	}
	return out
}

// Mean returns the arithmetic mean of samples.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// StdDev returns the population standard deviation.
func StdDev(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	m := Mean(samples)
	var ss float64
	for _, v := range samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(samples)))
}

// Pearson computes the correlation coefficient between paired samples.
// Returns NaN for fewer than two pairs or zero variance.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	if n < 2 {
		return math.NaN()
	}
	mx, my := Mean(x[:n]), Mean(y[:n])
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MeanAbsError returns the mean absolute difference between paired
// series, used to quantify estimation accuracy against ground truth
// (Figure 10).
func MeanAbsError(estimate, truth []float64) float64 {
	n := len(estimate)
	if len(truth) < n {
		n = len(truth)
	}
	if n == 0 {
		return math.NaN()
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Abs(estimate[i] - truth[i])
	}
	return sum / float64(n)
}

// Table renders rows as aligned plain text, in the spirit of the paper's
// tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float with the given decimals, for table cells.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Histogram counts samples into fixed-width buckets over [lo, hi);
// values outside clamp to the edge buckets.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	total   int
}

// NewHistogram builds a histogram with n buckets.
func NewHistogram(lo, hi float64, n int) *Histogram {
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, n)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	n := len(h.Buckets)
	idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(n))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Buckets[idx]++
	h.total++
}

// Fraction returns the share of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(h.total)
}

// Total returns the sample count.
func (h *Histogram) Total() int { return h.total }
