package engine

import (
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"runtime"
	"syscall"
	"testing"
	"time"

	"zoomlens/internal/cliobs"
	"zoomlens/internal/pcap"
	"zoomlens/internal/trace"
)

// leakCheck fails the test if the goroutine count does not return to
// the pre-run baseline. Shard workers, the signal relay, and the obs
// endpoint all shut down asynchronously, so it polls with a deadline
// and allows a small runtime-internal slack.
func leakCheck(t *testing.T, baseline int) {
	t.Helper()
	const slack = 2
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s", n, baseline, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// soakFlags builds a RunFrom flag set over a temp dir: 4 shards,
// rotation, and a delta checkpoint chain — every shutdown path the
// driver has.
func soakFlags(dir string) *Flags {
	return &Flags{
		Obs:                &cliobs.Flags{},
		Workers:            4,
		Checkpoint:         filepath.Join(dir, "state.zlcp"),
		CheckpointInterval: 200 * time.Millisecond,
		CheckpointDelta:    50 * time.Millisecond,
		CheckpointKeep:     2,
		Rotate:             300 * time.Millisecond,
		RotateOut:          filepath.Join(dir, "window"),
	}
}

// genSource adapts a StreamGen to RunFrom's record source.
func genSource(t *testing.T, packets int) (func(*pcap.Record) error, []netip.Prefix) {
	t.Helper()
	cfg := trace.DefaultStreamConfig()
	cfg.Streams = 50
	cfg.Packets = packets
	cfg.Interval = time.Millisecond
	gen, err := trace.NewStreamGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return gen.Next, []netip.Prefix{cfg.ZoomNet}
}

// TestRunFromShutdownLeaks drives engine.RunFrom through its shutdown
// paths — clean EOF with rotation mid-window, SIGINT mid-run during an
// active checkpoint chain, a record-source failure with live shards,
// and a failed restore — asserting after each that every goroutine the
// run started is gone.
func TestRunFromShutdownLeaks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: signal-driven shutdown test")
	}

	t.Run("clean_eof", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		next, nets := genSource(t, 2000)
		f := soakFlags(t.TempDir())
		run, err := f.RunFrom(nets, next, func() bool { return false })
		if err != nil {
			t.Fatal(err)
		}
		run.Close()
		if run.Rotations == 0 {
			t.Error("rotation never fired mid-run")
		}
		if run.Checkpoints == 0 || run.DeltaCheckpoints == 0 {
			t.Errorf("checkpoint chain inactive: %d fulls / %d deltas",
				run.Checkpoints, run.DeltaCheckpoints)
		}
		leakCheck(t, baseline)
	})

	t.Run("sigint_mid_run", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		next, nets := genSource(t, 1<<30) // only the signal ends this run
		f := soakFlags(t.TempDir())
		seen := 0
		interrupting := func(rec *pcap.Record) error {
			err := next(rec)
			if err == nil {
				seen++
				// After ~500 packets, deliver a real SIGINT to ourselves;
				// the driver's handler must drain shards, write the
				// shutdown checkpoint, and finish the partial report.
				if seen == 500 {
					syscall.Kill(os.Getpid(), syscall.SIGINT)
				}
			}
			return err
		}
		run, err := f.RunFrom(nets, interrupting, func() bool { return false })
		if err != nil {
			t.Fatal(err)
		}
		run.Close()
		if !run.Interrupted {
			t.Error("run not marked interrupted")
		}
		if run.Checkpoints == 0 {
			t.Error("no shutdown checkpoint after SIGINT")
		}
		leakCheck(t, baseline)
	})

	t.Run("source_error_mid_run", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		next, nets := genSource(t, 1<<30)
		f := soakFlags(t.TempDir())
		n := 0
		failing := func(rec *pcap.Record) error {
			n++
			if n > 700 {
				return fmt.Errorf("injected capture fault")
			}
			return next(rec)
		}
		if _, err := f.RunFrom(nets, failing, func() bool { return false }); err == nil {
			t.Fatal("run succeeded past an injected source fault")
		}
		leakCheck(t, baseline)
	})

	t.Run("restore_failure", func(t *testing.T) {
		baseline := runtime.NumGoroutine()
		dir := t.TempDir()
		bad := filepath.Join(dir, "state.zlcp")
		if err := os.WriteFile(bad, []byte("ZLCPgarbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		next, nets := genSource(t, 100)
		f := soakFlags(dir)
		f.Restore = bad
		if _, err := f.RunFrom(nets, next, func() bool { return false }); err == nil {
			t.Fatal("run restored from garbage")
		}
		leakCheck(t, baseline)
	})
}
