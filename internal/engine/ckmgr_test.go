package engine

import (
	"bytes"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zoomlens/internal/core"
	"zoomlens/internal/pcap"
	"zoomlens/internal/trace"
)

// ckWorkload returns a deterministic packet workload (timestamps +
// frames, Data copied out of the generator's reused buffer) and the
// matching engine config.
func ckWorkload(t testing.TB, packets int) ([]*pcap.Record, core.Config) {
	t.Helper()
	cfg := trace.DefaultStreamConfig()
	cfg.Streams = 50
	cfg.Packets = packets
	gen, err := trace.NewStreamGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var recs []*pcap.Record
	var rec pcap.Record
	for gen.Next(&rec) == nil {
		cp := rec
		cp.Data = append([]byte(nil), rec.Data...)
		recs = append(recs, &cp)
	}
	return recs, core.Config{
		ZoomNetworks:   []netip.Prefix{cfg.ZoomNet},
		CampusNetworks: []netip.Prefix{cfg.CampusNet},
	}
}

func feedRecords(eng core.Engine, recs []*pcap.Record, from, to int) {
	for _, r := range recs[from:to] {
		eng.Packet(r.Timestamp, r.Data)
	}
}

// engineFingerprint is the state-equality oracle: the full checkpoint
// encoding is deterministic and complete, so byte equality is state
// equality.
func engineFingerprint(t *testing.T, eng core.Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCheckpointerTmpCleanup(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "state.zlcp")
	orphans := []string{
		base + ".tmp-1234",
		base + ".00000003.full.zlcp.tmp-999",
	}
	for _, name := range orphans {
		if err := os.WriteFile(name, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// An unrelated sibling must survive the sweep.
	unrelated := filepath.Join(dir, "other.tmp-1")
	if err := os.WriteFile(unrelated, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	ck := NewCheckpointer(base, 2, true, nil)
	if ck.TmpCleaned != len(orphans) {
		t.Errorf("TmpCleaned = %d, want %d", ck.TmpCleaned, len(orphans))
	}
	for _, name := range orphans {
		if _, err := os.Stat(name); err == nil {
			t.Errorf("orphan %s survived startup sweep", filepath.Base(name))
		}
	}
	if _, err := os.Stat(unrelated); err != nil {
		t.Errorf("unrelated sibling removed: %v", err)
	}
}

func TestCheckpointerLegacyGenerations(t *testing.T) {
	recs, cfg := ckWorkload(t, 600)
	dir := t.TempDir()
	base := filepath.Join(dir, "state.zlcp")

	eng := core.NewAnalyzer(cfg)
	ck := NewCheckpointer(base, 3, false, nil)
	cuts := []int{200, 400, 600}
	prev := 0
	for _, cut := range cuts {
		feedRecords(eng, recs, prev, cut)
		if err := ck.WriteFull(eng); err != nil {
			t.Fatal(err)
		}
		prev = cut
	}
	want := engineFingerprint(t, eng)

	for _, name := range []string{base, base + ".1", base + ".2"} {
		if _, err := os.Stat(name); err != nil {
			t.Fatalf("generation %s missing: %v", filepath.Base(name), err)
		}
	}

	// Pristine restore lands on the newest generation.
	restored, fallbacks, err := RestoreEngine(base, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fallbacks != 0 {
		t.Errorf("pristine restore took %d fallbacks", fallbacks)
	}
	if !bytes.Equal(engineFingerprint(t, restored), want) {
		t.Error("restored state differs from live state")
	}

	// Tear the newest generation: restore must fall back to .1 (the
	// state as of the second cut).
	if err := os.Truncate(base, 10); err != nil {
		t.Fatal(err)
	}
	restored, fallbacks, err = RestoreEngine(base, cfg, nil)
	if err != nil {
		t.Fatalf("restore with torn newest generation: %v", err)
	}
	if fallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", fallbacks)
	}
	ref := core.NewAnalyzer(cfg)
	feedRecords(ref, recs, 0, cuts[1])
	if !bytes.Equal(engineFingerprint(t, restored), engineFingerprint(t, ref)) {
		t.Error("fallback restore differs from reference state at the older cut")
	}

	// Every generation torn: restore must fail, reporting the first error.
	for _, name := range []string{base + ".1", base + ".2"} {
		if err := os.Truncate(name, 10); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := RestoreEngine(base, cfg, nil); err == nil {
		t.Fatal("restore succeeded with every generation torn")
	}
}

func TestCheckpointerChainPrune(t *testing.T) {
	recs, cfg := ckWorkload(t, 900)
	dir := t.TempDir()
	base := filepath.Join(dir, "state.zlcp")

	eng := core.NewAnalyzer(cfg)
	ck := NewCheckpointer(base, 2, true, nil)
	// full, delta, delta, full, delta, full — pruning after the last full
	// must keep the two newest fulls and the deltas between them.
	plan := []struct {
		cut  int
		full bool
	}{
		{100, true}, {200, false}, {300, false},
		{400, true}, {500, false},
		{600, true},
	}
	prev := 0
	for _, step := range plan {
		feedRecords(eng, recs, prev, step.cut)
		var err error
		if step.full {
			err = ck.WriteFull(eng)
		} else {
			err = ck.WriteDelta(eng)
		}
		if err != nil {
			t.Fatal(err)
		}
		prev = step.cut
	}
	if ck.Fulls != 3 || ck.Deltas != 3 {
		t.Fatalf("wrote %d fulls / %d deltas, want 3 / 3", ck.Fulls, ck.Deltas)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var fulls, deltas int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), chainSuffixFull):
			fulls++
		case strings.HasSuffix(e.Name(), chainSuffixDelta):
			deltas++
		}
	}
	// Kept: fulls at seq 3 and 5 plus the delta at seq 4 between them;
	// pruned: seq 0-2.
	if fulls != 2 || deltas != 1 {
		t.Errorf("after prune: %d fulls / %d deltas on disk, want 2 / 1", fulls, deltas)
	}

	// The pruned chain must still restore to the live state.
	restored, fallbacks, err := RestoreEngine(base, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0", fallbacks)
	}
	if !bytes.Equal(engineFingerprint(t, restored), engineFingerprint(t, eng)) {
		t.Error("restore from pruned chain differs from live state")
	}
}

// TestCheckpointerDeltaFallsBackToFull pins the de-synchronization
// guard: asking for a delta from an engine that cannot produce one must
// transparently write a full snapshot instead.
func TestCheckpointerDeltaFallsBackToFull(t *testing.T) {
	recs, cfg := ckWorkload(t, 100)
	base := filepath.Join(t.TempDir(), "state.zlcp")

	eng := core.NewAnalyzer(cfg)
	feedRecords(eng, recs, 0, len(recs))
	ck := NewCheckpointer(base, 2, true, nil)
	// No full checkpoint yet, so the delta chain is unarmed.
	if err := ck.WriteDelta(eng); err != nil {
		t.Fatal(err)
	}
	if ck.Fulls != 1 || ck.Deltas != 0 {
		t.Errorf("unarmed WriteDelta wrote %d fulls / %d deltas, want 1 / 0", ck.Fulls, ck.Deltas)
	}
	if _, err := os.Stat(base + ".00000000" + chainSuffixFull); err != nil {
		t.Errorf("fallback full record missing: %v", err)
	}
}

// TestCheckpointerSeqResume: a restarted process must append to the
// chain it restored from, not overwrite it.
func TestCheckpointerSeqResume(t *testing.T) {
	recs, cfg := ckWorkload(t, 200)
	base := filepath.Join(t.TempDir(), "state.zlcp")

	eng := core.NewAnalyzer(cfg)
	feedRecords(eng, recs, 0, 100)
	ck := NewCheckpointer(base, 4, true, nil)
	if err := ck.WriteFull(eng); err != nil {
		t.Fatal(err)
	}
	feedRecords(eng, recs, 100, 200)
	if err := ck.WriteDelta(eng); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh Checkpointer over the same base must continue
	// at the next sequence number.
	ck2 := NewCheckpointer(base, 4, true, nil)
	if err := ck2.WriteFull(eng); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(base + ".00000002" + chainSuffixFull); err != nil {
		t.Errorf("resumed checkpointer did not continue the sequence: %v", err)
	}
	if _, err := os.Stat(base + ".00000000" + chainSuffixFull); err != nil {
		t.Errorf("resumed checkpointer clobbered the existing chain: %v", err)
	}
}

// TestChainRestoreTornFiles is the kill -9 matrix at the file layer: a
// chain damaged mid-write (truncated or bit-flipped tail records, torn
// interleaved fulls) must restore to the newest state the intact prefix
// proves, never error out while valid fulls remain, and never panic.
func TestChainRestoreTornFiles(t *testing.T) {
	recs, cfg := ckWorkload(t, 800)

	// build writes the canonical chain: full@0 (cut 200), delta@1
	// (cut 400), full@2 (cut 600), delta@3 (cut 800); returns the
	// fingerprints at each cut.
	cuts := []int{200, 400, 600, 800}
	build := func(t *testing.T) (string, [][]byte) {
		dir := t.TempDir()
		base := filepath.Join(dir, "state.zlcp")
		eng := core.NewAnalyzer(cfg)
		ck := NewCheckpointer(base, 4, true, nil)
		var prints [][]byte
		prev := 0
		for i, cut := range cuts {
			feedRecords(eng, recs, prev, cut)
			var err error
			if i%2 == 0 {
				err = ck.WriteFull(eng)
			} else {
				err = ck.WriteDelta(eng)
			}
			if err != nil {
				t.Fatal(err)
			}
			prints = append(prints, engineFingerprint(t, eng))
			prev = cut
		}
		return base, prints
	}
	name := func(base string, seq int, full bool) string {
		suffix := chainSuffixDelta
		if full {
			suffix = chainSuffixFull
		}
		return base + "." + "0000000" + string(rune('0'+seq)) + suffix
	}
	damage := map[string]func(t *testing.T, path string){
		"truncate_half": func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		},
		"flip_bit": func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"empty": func(t *testing.T, path string) {
			if err := os.Truncate(path, 0); err != nil {
				t.Fatal(err)
			}
		},
	}

	for damageName, corrupt := range damage {
		t.Run(damageName, func(t *testing.T) {
			t.Run("newest_delta", func(t *testing.T) {
				base, prints := build(t)
				corrupt(t, name(base, 3, false))
				restored, fallbacks, err := RestoreEngine(base, cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				if fallbacks == 0 {
					t.Error("no fallback counted for the damaged record")
				}
				if !bytes.Equal(engineFingerprint(t, restored), prints[2]) {
					t.Error("restore did not land on the state before the damaged delta")
				}
			})
			t.Run("newest_full", func(t *testing.T) {
				// Damaging full@2 loses delta@3 with it: delta@3's base is
				// the state at full@2's encode, which includes packets only
				// that full captured. The restore must try full@0 + delta@1 +
				// delta@3, have the base check refuse delta@3, and settle on
				// the state after delta@1 — never error while a valid prefix
				// remains.
				base, prints := build(t)
				corrupt(t, name(base, 2, true))
				restored, fallbacks, err := RestoreEngine(base, cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				// Two candidates fail: the damaged full, then the orphaned
				// delta.
				if fallbacks < 2 {
					t.Errorf("fallbacks = %d, want >= 2", fallbacks)
				}
				if !bytes.Equal(engineFingerprint(t, restored), prints[1]) {
					t.Error("restore did not settle on the newest reachable state")
				}
			})
			t.Run("everything_after_first_full", func(t *testing.T) {
				base, prints := build(t)
				corrupt(t, name(base, 1, false))
				corrupt(t, name(base, 2, true))
				corrupt(t, name(base, 3, false))
				restored, fallbacks, err := RestoreEngine(base, cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				if fallbacks == 0 {
					t.Error("no fallbacks counted")
				}
				if !bytes.Equal(engineFingerprint(t, restored), prints[0]) {
					t.Error("restore did not land on the oldest full")
				}
			})
			t.Run("every_full", func(t *testing.T) {
				base, _ := build(t)
				corrupt(t, name(base, 0, true))
				corrupt(t, name(base, 2, true))
				if _, _, err := RestoreEngine(base, cfg, nil); err == nil {
					t.Fatal("restore succeeded with every full damaged")
				}
			})
		})
	}

	t.Run("missing_chain", func(t *testing.T) {
		base := filepath.Join(t.TempDir(), "absent.zlcp")
		if _, _, err := RestoreEngine(base, cfg, nil); err == nil {
			t.Fatal("restore succeeded with no chain at all")
		}
	})
}
