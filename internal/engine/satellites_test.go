package engine

// Regression tests for the driver accounting fixes that ride along with
// cluster mode: rotation failures counted (not silently absorbed into
// the success counter), the panic quarantine flushed on mid-run source
// failures, shed_bytes/rotate_failures present in the status JSON, and
// the restore worker-count warning firing for every explicitly-set
// -workers that the checkpoint overrides.

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"zoomlens/internal/cliobs"
	"zoomlens/internal/core"
	"zoomlens/internal/pcap"
)

// TestRotateFailureAccounting points -rotate-out into a directory that
// does not exist: every window write fails, so Rotations must stay 0
// (it counts reports that landed) while RotateFailures counts each
// failed window.
func TestRotateFailureAccounting(t *testing.T) {
	dir := t.TempDir()
	next, nets := genSource(t, 2000)
	f := &Flags{
		Obs:       &cliobs.Flags{},
		Workers:   1,
		Rotate:    300 * time.Millisecond,
		RotateOut: filepath.Join(dir, "missing-dir", "window"),
	}
	run, err := f.RunFrom(nets, next, func() bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	if run.RotateFailures == 0 {
		t.Fatal("no rotate failures recorded against an unwritable -rotate-out")
	}
	if run.Rotations != 0 {
		t.Errorf("Rotations = %d with every window write failing, want 0", run.Rotations)
	}

	// The status JSON carries both new counters (shed_bytes and
	// rotate_failures), mirrored to a file in cluster-part style.
	run.statusPath = filepath.Join(dir, "status.json")
	run.EmitStatus()
	data, err := os.ReadFile(run.statusPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"rotate_failures":`, `"shed_bytes":`, `"rotations":0`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("status JSON lacks %s:\n%s", key, data)
		}
	}
	if want := fmt.Sprintf(`"rotate_failures":%d`, run.RotateFailures); !strings.Contains(string(data), want) {
		t.Errorf("status JSON does not carry the failure count %s:\n%s", want, data)
	}

	// Control: the same run over a writable prefix counts successes and
	// numbers the files contiguously from zero.
	next2, nets2 := genSource(t, 2000)
	ok := &Flags{
		Obs:       &cliobs.Flags{},
		Workers:   1,
		Rotate:    300 * time.Millisecond,
		RotateOut: filepath.Join(dir, "window"),
	}
	run2, err := ok.RunFrom(nets2, next2, func() bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	defer run2.Close()
	if run2.Rotations == 0 || run2.RotateFailures != 0 {
		t.Fatalf("writable rotation: %d rotations, %d failures", run2.Rotations, run2.RotateFailures)
	}
	for i := 0; i < run2.Rotations; i++ {
		if _, err := os.Stat(fmt.Sprintf("%s-%04d.json", ok.RotateOut, i)); err != nil {
			t.Errorf("window %d missing: %v", i, err)
		}
	}
}

// TestSourceErrorFlushesQuarantine injects panics into processing and
// then fails the record source mid-run: the teardown path must still
// write the quarantined frames out for offline dissection.
func TestSourceErrorFlushesQuarantine(t *testing.T) {
	qpath := filepath.Join(t.TempDir(), "quarantine.pcap")
	next, nets := genSource(t, 1<<30)
	f := &Flags{
		Obs:            &cliobs.Flags{},
		Workers:        1,
		QuarantinePath: qpath,
	}
	hooked := 0
	f.engineHook = func(eng core.Engine) {
		pa := eng.(*core.ParallelAnalyzer)
		pa.SetPanicHook(func(at time.Time, frame []byte) {
			hooked++
			if hooked%50 == 0 {
				panic("injected fault")
			}
		})
	}
	n := 0
	failing := func(rec *pcap.Record) error {
		n++
		if n > 700 {
			return fmt.Errorf("injected capture fault")
		}
		return next(rec)
	}
	if _, err := f.RunFrom(nets, failing, func() bool { return false }); err == nil {
		t.Fatal("run succeeded past an injected source fault")
	}
	data, err := os.ReadFile(qpath)
	if err != nil {
		t.Fatalf("quarantine pcap not written on the source-error path: %v", err)
	}
	s, err := pcap.OpenStream(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("quarantine pcap unreadable: %v", err)
	}
	frames := 0
	var rec pcap.Record
	for s.NextInto(&rec) == nil {
		frames++
	}
	if frames == 0 {
		t.Fatal("quarantine pcap holds no frames")
	}
}

// restoreWarning runs a restore with the given flags and returns what
// the driver logged.
func restoreWarning(t *testing.T, f *Flags, ckPath string) string {
	t.Helper()
	var buf bytes.Buffer
	log.SetOutput(&buf)
	defer log.SetOutput(os.Stderr)
	f.Restore = ckPath
	next, nets := genSource(t, 50)
	run, err := f.RunFrom(nets, next, func() bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	run.Close()
	return buf.String()
}

// TestRestoreWorkerWarning pins the fixed warning predicate: any
// explicitly set -workers that differs from the checkpoint's engine
// warns — including -workers 1 against a parallel checkpoint and
// -workers N against a sequential one, both silent before the fix.
func TestRestoreWorkerWarning(t *testing.T) {
	dir := t.TempDir()
	_, nets := genSource(t, 1)
	cfg := core.Config{ZoomNetworks: nets}

	parCk := filepath.Join(dir, "par.zlcp")
	if err := NewCheckpointer(parCk, 1, false, nil).WriteFull(core.NewParallelAnalyzer(cfg, 2)); err != nil {
		t.Fatal(err)
	}
	seqCk := filepath.Join(dir, "seq.zlcp")
	if err := NewCheckpointer(seqCk, 1, false, nil).WriteFull(core.NewAnalyzer(cfg)); err != nil {
		t.Fatal(err)
	}

	// Flags built via a parsed FlagSet so explicitness is real.
	parse := func(args ...string) *Flags {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		f := Register(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		f.Obs = &cliobs.Flags{}
		return f
	}

	cases := []struct {
		name string
		f    *Flags
		ck   string
		warn bool
	}{
		{"explicit_4_vs_parallel_2", parse("-workers", "4"), parCk, true},
		{"explicit_1_vs_parallel_2", parse("-workers", "1"), parCk, true},
		{"explicit_4_vs_sequential", parse("-workers", "4"), seqCk, true},
		{"explicit_2_vs_parallel_2", parse("-workers", "2"), parCk, false},
		{"default_vs_parallel_2", parse(), parCk, false},
		{"default_vs_sequential", parse(), seqCk, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := restoreWarning(t, tc.f, tc.ck)
			if got := strings.Contains(out, "ignoring -workers"); got != tc.warn {
				t.Errorf("warning emitted = %v, want %v; log:\n%s", got, tc.warn, out)
			}
		})
	}
}
