package engine

// Streaming feature export and live QoE inference: the driver side of
// the header-free pipeline. The engine's windower emits feature rows on
// the capture clock; the driver drains them periodically (drain cadence
// never affects row content or order), appends them to the -features
// CSV, and — with -predict — runs each video row through the loaded
// model, surfacing predictions as Prometheus series and as JSON lines
// on the snapshot sink.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"zoomlens/internal/cliobs"
	"zoomlens/internal/features"
	"zoomlens/internal/obs"
	"zoomlens/internal/predict"
	"zoomlens/internal/rtcproto"
	"zoomlens/internal/zoom"
)

// featureSink fans drained feature rows out to their consumers.
type featureSink struct {
	// every is the trace-clock drain cadence: generous multiples of the
	// window so a drain almost always finds closed windows, floored so a
	// sub-second window does not drain on every packet burst.
	every time.Duration

	csv  *features.CSVWriter
	csvF *os.File // nil when the CSV goes to stdout or is disabled

	model *predict.Model
	jsonW io.Writer
	enc   *json.Encoder

	rows        int
	predictions int

	predTotal [features.NumLabels]*obs.Counter
	predLast  [features.NumLabels]*obs.Gauge
}

// newFeatureSink builds the sink from the parsed flags. window is the
// effective feature window (already defaulted by the caller).
func newFeatureSink(f *Flags, setup *cliobs.Setup, window time.Duration) (*featureSink, error) {
	s := &featureSink{every: 5 * window}
	if s.every < 5*time.Second {
		s.every = 5 * time.Second
	}
	switch f.Features {
	case "":
		// -predict without a CSV: inference only.
	case "-":
		s.csv = features.NewCSVWriter(os.Stdout)
	default:
		cf, err := os.Create(f.Features)
		if err != nil {
			return nil, err
		}
		s.csvF = cf
		s.csv = features.NewCSVWriter(cf)
	}
	if f.Predict {
		if f.Model == "" {
			s.discard()
			return nil, errors.New("engine: -predict requires -model (train one with zoomfeatures -train)")
		}
		mf, err := os.Open(f.Model)
		if err != nil {
			s.discard()
			return nil, err
		}
		m, err := predict.Load(mf)
		mf.Close()
		if err != nil {
			s.discard()
			return nil, err
		}
		s.model = m
		s.jsonW = setup.SnapshotSink()
		s.enc = json.NewEncoder(s.jsonW)
		if setup.Registry != nil {
			for lab := 0; lab < features.NumLabels; lab++ {
				l := obs.Label{Key: "label", Value: features.Label(lab).String()}
				s.predTotal[lab] = setup.Registry.Counter("zoomlens_qoe_predictions_total",
					"video feature windows classified by the QoE model", l)
				s.predLast[lab] = setup.Registry.Gauge("zoomlens_qoe_streams",
					"video rows per predicted label in the most recent feature drain", l)
			}
		}
	}
	return s, nil
}

// qoePrediction is the JSON line emitted per classified video row.
type qoePrediction struct {
	Type        string    `json:"type"`
	WindowStart time.Time `json:"window_start"`
	WindowMS    int64     `json:"window_ms"`
	App         string    `json:"app"`
	SSRC        uint32    `json:"ssrc"`
	Flow        string    `json:"flow"`
	Label       string    `json:"label"`
	PGood       float64   `json:"p_good"`
	PDegraded   float64   `json:"p_degraded"`
	PBad        float64   `json:"p_bad"`
}

// drain consumes one batch of feature rows.
func (s *featureSink) drain(rows []features.Row) {
	if s == nil || len(rows) == 0 {
		return
	}
	s.rows += len(rows)
	if s.csv != nil {
		s.csv.WriteRows(rows)
	}
	if s.model == nil {
		return
	}
	var counts [features.NumLabels]int
	for i := range rows {
		r := &rows[i]
		if r.ID.Key.Type != zoom.TypeVideo {
			continue
		}
		lab, probs := s.model.Predict(r)
		s.predictions++
		counts[lab]++
		s.predTotal[lab].Inc()
		if err := s.enc.Encode(qoePrediction{
			Type:        "qoe_prediction",
			WindowStart: r.Start.UTC(),
			WindowMS:    r.Window.Milliseconds(),
			App:         rtcproto.NameOf(r.ID.Key.Proto),
			SSRC:        r.ID.Key.SSRC,
			Flow:        r.ID.Flow.String(),
			Label:       lab.String(),
			PGood:       probs[features.LabelGood],
			PDegraded:   probs[features.LabelDegraded],
			PBad:        probs[features.LabelBad],
		}); err != nil {
			log.Printf("qoe prediction: %v", err)
		}
	}
	for lab, n := range counts {
		s.predLast[lab].Set(int64(n))
	}
}

// close flushes the CSV and closes its file.
func (s *featureSink) close() error {
	if s == nil {
		return nil
	}
	var err error
	if s.csv != nil {
		if e := s.csv.Flush(); e != nil {
			err = fmt.Errorf("features csv: %w", e)
		}
	}
	if s.csvF != nil {
		if e := s.csvF.Close(); e != nil && err == nil {
			err = fmt.Errorf("features csv: %w", e)
		}
		s.csvF = nil
	}
	return err
}

// discard tears down a half-built sink on a construction error.
func (s *featureSink) discard() {
	if s == nil {
		return
	}
	if s.csvF != nil {
		s.csvF.Close()
		os.Remove(s.csvF.Name())
		s.csvF = nil
	}
}
