package engine

// Checkpoint lifecycle management for crash-safe continuous operation.
//
// Two layouts, selected by whether delta checkpoints are enabled:
//
//   - Legacy (full-only): every checkpoint is a complete snapshot
//     written atomically over <path>, with the previous generations
//     rotated to <path>.1, <path>.2, … up to the retention count, so a
//     full file torn by a crash mid-rename still leaves an older valid
//     generation to restore from.
//
//   - Chain: checkpoints are an append-only sequence of files
//     <path>.<seq>.full.zlcp / <path>.<seq>.delta.zlcp. A delta record
//     extends the state as of the previous file in the sequence;
//     restore loads the newest valid full and replays every delta after
//     it, falling back to older fulls when a file is torn or corrupt.
//     Writing a full prunes everything older than the retention count's
//     oldest surviving full (compaction).
//
// Every file is written to a temp name in the destination directory,
// fsynced, and renamed into place, so no reader — including the restore
// path after a kill -9 — ever sees a partially written file under a
// real checkpoint name. Orphaned temp files from a crash mid-write are
// swept (and counted) at startup.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"zoomlens/internal/core"
	"zoomlens/internal/obs"
)

const (
	chainSuffixFull  = ".full.zlcp"
	chainSuffixDelta = ".delta.zlcp"
)

// chainFile is one parsed member of a checkpoint chain directory.
type chainFile struct {
	name string // full path
	seq  uint64
	full bool
}

// Checkpointer owns one checkpoint destination: generation rotation or
// delta-chain layout, atomic writes, startup temp-file cleanup, and the
// counters the status line reports. Not safe for concurrent use (the
// driver calls it from the ingest goroutine only).
type Checkpointer struct {
	path    string
	keep    int
	chain   bool
	metrics *obs.CheckpointMetrics

	seq uint64 // next chain sequence number

	// TmpCleaned is how many orphaned temp files startup removed.
	TmpCleaned int
	// Fulls and Deltas count records written this run.
	Fulls  int
	Deltas int
}

// NewCheckpointer prepares a checkpoint destination: sweeps temp-file
// debris from a previous crash and, in chain mode, resumes sequence
// numbering after the newest existing chain file (so a restored run
// appends to the chain it restored from instead of overwriting it).
func NewCheckpointer(path string, keep int, chain bool, m *obs.CheckpointMetrics) *Checkpointer {
	if keep < 1 {
		keep = 1
	}
	c := &Checkpointer{path: path, keep: keep, chain: chain, metrics: m}
	c.TmpCleaned = cleanOrphanedTmp(path)
	if m != nil {
		m.TmpCleaned.Add(uint64(c.TmpCleaned))
	}
	if chain {
		for _, cf := range listChain(path) {
			if cf.seq >= c.seq {
				c.seq = cf.seq + 1
			}
		}
	}
	return c
}

// cleanOrphanedTmp removes temp files left next to path by a crash
// mid-checkpoint (any "<base>*.tmp-*" sibling), returning how many.
func cleanOrphanedTmp(path string) int {
	dir, base := filepath.Dir(path), filepath.Base(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, base) || !strings.Contains(name, ".tmp-") {
			continue
		}
		if os.Remove(filepath.Join(dir, name)) == nil {
			n++
		}
	}
	return n
}

// listChain returns the chain files for base path, sorted by sequence.
func listChain(path string) []chainFile {
	dir, base := filepath.Dir(path), filepath.Base(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []chainFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, base+".") {
			continue
		}
		rest := name[len(base)+1:]
		full := strings.HasSuffix(rest, chainSuffixFull[1:])
		delta := strings.HasSuffix(rest, chainSuffixDelta[1:])
		if !full && !delta {
			continue
		}
		seqStr := rest[:strings.IndexByte(rest, '.')]
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue
		}
		out = append(out, chainFile{name: filepath.Join(dir, name), seq: seq, full: full})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// atomicWrite encodes via write into a temp file next to name, fsyncs,
// and renames it over name. Returns the encoded size.
func atomicWrite(name string, write func(io.Writer) error) (int64, error) {
	tmp, err := os.CreateTemp(filepath.Dir(name), filepath.Base(name)+".tmp-")
	if err != nil {
		return 0, err
	}
	tmpName := tmp.Name()
	cw := &countWriter{w: tmp}
	err = write(cw)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, name)
	}
	if err != nil {
		os.Remove(tmpName)
		return 0, err
	}
	return cw.n, nil
}

// WriteFull writes a complete snapshot: rotate-and-replace in legacy
// mode, a new .full chain file (followed by pruning) in chain mode.
func (c *Checkpointer) WriteFull(eng core.Engine) error {
	start := time.Now()
	var size int64
	var err error
	if c.chain {
		name := c.chainName(c.seq, true)
		size, err = atomicWrite(name, eng.Checkpoint)
		if err == nil {
			c.seq++
			c.prune()
		}
	} else {
		c.rotateGenerations()
		size, err = atomicWrite(c.path, eng.Checkpoint)
	}
	if err != nil {
		if c.metrics != nil {
			c.metrics.Failed.Inc()
		}
		return err
	}
	c.Fulls++
	c.metrics.Record(time.Since(start), size, time.Now())
	return nil
}

// WriteDelta writes an incremental record extending the chain. When the
// engine cannot produce one (chain not armed, tombstone overflow, or a
// rotation broke the lineage) — or the write itself fails, which
// de-synchronizes the on-disk chain from the engine's in-memory anchor
// — it falls back to a full snapshot, which re-anchors both.
func (c *Checkpointer) WriteDelta(eng core.Engine) error {
	if !c.chain {
		return c.WriteFull(eng)
	}
	start := time.Now()
	name := c.chainName(c.seq, false)
	size, err := atomicWrite(name, eng.CheckpointDelta)
	if err != nil {
		if !errors.Is(err, core.ErrDeltaUnavailable) && c.metrics != nil {
			c.metrics.Failed.Inc()
		}
		return c.WriteFull(eng)
	}
	c.seq++
	c.Deltas++
	if c.metrics != nil {
		c.metrics.DeltaWritten.Inc()
		c.metrics.DurationMS.Set(time.Since(start).Milliseconds())
		c.metrics.SizeBytes.Set(size)
		c.metrics.LastUnix.Set(time.Now().Unix())
	}
	return nil
}

func (c *Checkpointer) chainName(seq uint64, full bool) string {
	suffix := chainSuffixDelta
	if full {
		suffix = chainSuffixFull
	}
	return fmt.Sprintf("%s.%08d%s", c.path, seq, suffix)
}

// rotateGenerations shifts <path> → <path>.1 → … before a legacy full
// write, retaining keep generations total.
func (c *Checkpointer) rotateGenerations() {
	if c.keep < 2 {
		return
	}
	os.Remove(legacyGenName(c.path, c.keep-1))
	for i := c.keep - 1; i >= 1; i-- {
		os.Rename(legacyGenName(c.path, i-1), legacyGenName(c.path, i))
	}
}

func legacyGenName(path string, gen int) string {
	if gen == 0 {
		return path
	}
	return fmt.Sprintf("%s.%d", path, gen)
}

// prune removes chain files older than the keep-th newest full. Deltas
// between retained fulls stay — fallback restore may need them.
func (c *Checkpointer) prune() {
	files := listChain(c.path)
	var fullSeqs []uint64
	for _, cf := range files {
		if cf.full {
			fullSeqs = append(fullSeqs, cf.seq)
		}
	}
	if len(fullSeqs) <= c.keep {
		return
	}
	cutoff := fullSeqs[len(fullSeqs)-c.keep]
	for _, cf := range files {
		if cf.seq < cutoff {
			os.Remove(cf.name)
		}
	}
}

// restoreFile loads one full checkpoint file.
func restoreFile(name string, cfg core.Config) (core.Engine, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.RestoreAnalyzer(f, cfg)
}

// RestoreEngine rebuilds an engine from a checkpoint destination,
// surviving torn or corrupt files: it walks from the newest valid state
// backwards until one restores, counting every generation skipped.
//
// path may be a legacy checkpoint file (generation fallback: path,
// path.1, …) or a chain base (newest valid full + its deltas, falling
// back to older fulls; a delta that fails to apply truncates the chain
// at that point). fallbacks reports how many candidate states were
// skipped before success.
func RestoreEngine(path string, cfg core.Config, m *obs.CheckpointMetrics) (eng core.Engine, fallbacks int, err error) {
	defer func() {
		if m != nil && fallbacks > 0 {
			m.Fallbacks.Add(uint64(fallbacks))
		}
	}()
	if _, serr := os.Stat(path); serr == nil {
		// Legacy layout: the base file exists. Try it, then its rotated
		// generations.
		var firstErr error
		for gen := 0; ; gen++ {
			name := legacyGenName(path, gen)
			if _, serr := os.Stat(name); serr != nil {
				break
			}
			eng, err := restoreFile(name, cfg)
			if err == nil {
				return eng, fallbacks, nil
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("restoring %s: %w", name, err)
			}
			fallbacks++
		}
		return nil, fallbacks, firstErr
	}
	files := listChain(path)
	if len(files) == 0 {
		return nil, 0, fmt.Errorf("restoring %s: no checkpoint file or chain found", path)
	}
	var firstErr error
	end := len(files)
	badFull := make(map[int]bool)
	for end > 0 {
		// Newest still-credible full before end. A full that failed to
		// restore is skipped, not a chain cut: a full encode does not
		// change engine state, so the deltas recorded after it still
		// apply on top of an older full plus the deltas before it.
		fi := -1
		for i := end - 1; i >= 0; i-- {
			if files[i].full && !badFull[i] {
				fi = i
				break
			}
		}
		if fi < 0 {
			break
		}
		eng, err := restoreFile(files[fi].name, cfg)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("restoring %s: %w", files[fi].name, err)
			}
			fallbacks++
			badFull[fi] = true
			continue
		}
		// Replay the deltas after it. Interleaved full files are skipped
		// as records (there is nothing to apply); whether the deltas
		// beyond a skipped full are still reachable is arbitrated by each
		// delta's own base check — a delta anchored to state only the
		// damaged full captured fails cleanly and truncates the chain
		// there.
		ok := true
		for j := fi + 1; j < end; j++ {
			if files[j].full {
				continue
			}
			f, err := os.Open(files[j].name)
			if err == nil {
				err = eng.ApplyDelta(f)
				f.Close()
			}
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("applying %s: %w", files[j].name, err)
				}
				// The engine may be half-mutated; discard it and retry the
				// chain truncated at the failing record.
				core.Discard(eng)
				fallbacks++
				end = j
				ok = false
				break
			}
		}
		if ok {
			return eng, fallbacks, nil
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("restoring %s: chain has no full checkpoint", path)
	}
	return nil, fallbacks, firstErr
}
