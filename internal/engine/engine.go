// Package engine is the shared CLI driver behind the zoomlens tools:
// one flag surface, one input-opening path, and one ingest loop feed a
// core.Engine, so the tools differ only in how they print the result.
//
// The package has two layers. Source is the input half every tool uses:
// it opens a path (or stdin), sniffs classic pcap vs. pcapng, and
// iterates records zero-copy. Flags/Run is the full analysis pipeline
// for the reporting tools: flags → engine → signal-aware ingest with
// borrowed buffers → snapshots → status line.
package engine

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zoomlens/internal/cliobs"
	"zoomlens/internal/cluster"
	"zoomlens/internal/core"
	"zoomlens/internal/obs"
	"zoomlens/internal/pcap"
	"zoomlens/internal/rtcproto"
)

// Source is an opened capture input: a file or stdin ("-"), classic
// pcap or pcapng. Records are iterated zero-copy via NextInto; Next
// remains for callers that want owned copies.
type Source struct {
	f      *os.File
	stream *pcap.Stream
}

// Open opens path ("-" selects stdin) and sniffs the capture format.
func Open(path string) (*Source, error) {
	var f *os.File
	if path == "-" {
		f = os.Stdin
	} else {
		var err error
		f, err = os.Open(path)
		if err != nil {
			return nil, err
		}
	}
	stream, err := pcap.OpenStream(f)
	if err != nil {
		if f != os.Stdin {
			f.Close()
		}
		return nil, err
	}
	return &Source{f: f, stream: stream}, nil
}

// NextInto reads the next record into rec; rec.Data borrows the
// reader's buffer and is valid only until the next call.
func (s *Source) NextInto(rec *pcap.Record) error { return s.stream.NextInto(rec) }

// Next returns the next record with caller-owned Data.
func (s *Source) Next() (pcap.Record, error) { return s.stream.Next() }

// Truncated reports whether the stream was cut mid-record.
func (s *Source) Truncated() bool { return s.stream.Truncated() }

// Nanosecond reports whether record timestamps carry full nanosecond
// resolution (see pcap.Stream.Nanosecond).
func (s *Source) Nanosecond() bool { return s.stream.Nanosecond() }

// Close closes the underlying file (a no-op for stdin).
func (s *Source) Close() error {
	if s.f == os.Stdin {
		return nil
	}
	return s.f.Close()
}

// Flags holds the common analysis-tool flag values: input, engine
// sizing, bounded-state caps, quarantine, and the cliobs observability
// set.
type Flags struct {
	Input          string
	Proto          string
	Workers        int
	MaxFlows       int
	MaxStreams     int
	FlowTTL        time.Duration
	QuarantinePath string
	Obs            *cliobs.Flags

	// Checkpoint/restore and report rotation (all trace-clock driven, so
	// offline replays behave exactly like the live tap they replay).
	Checkpoint         string
	CheckpointInterval time.Duration
	CheckpointDelta    time.Duration
	CheckpointKeep     int
	Restore            string
	Rotate             time.Duration
	RotateOut          string

	// Overload / memory-bound hardening.
	Shed        bool
	MaxFinished int

	// Streaming feature extraction and live QoE inference (the
	// header-free pipeline: windower rows → CSV and/or model).
	Features      string
	FeatureWindow time.Duration
	Predict       bool
	Model         string

	// ClusterPart runs this process as one cluster worker: the input is
	// a splitter stream (pcapng frames stamped with global sequence
	// numbers), media observations are exported to <part>.obs, the
	// shutdown checkpoint defaults to <part>.state.zlcp, and the status
	// JSON is mirrored to <part>.status.json for the aggregator.
	ClusterPart string

	// fs remembers the FlagSet Register installed on, so the driver can
	// distinguish an explicitly set flag from its default. Nil when the
	// Flags struct was built directly (tests, embedders).
	fs *flag.FlagSet

	// engineHook, when set, observes the engine right after creation or
	// restore. Tests use it to install panic hooks; production never
	// sets it.
	engineHook func(core.Engine)
}

// Register installs the shared analysis flags on fs.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Input, "i", "", "input pcap path")
	fs.StringVar(&f.Proto, "proto", "auto", "protocol plugins to decode: auto (all), a name (zoom, webrtc), or a comma list; probe order is always canonical")
	fs.IntVar(&f.Workers, "workers", 1, "analysis shards: 1 = sequential, 0 = one per CPU")
	fs.IntVar(&f.MaxFlows, "max-flows", 0, "cap concurrent flow-table entries; packets refused at the cap are counted (0 = unlimited)")
	fs.IntVar(&f.MaxStreams, "max-streams", 0, "cap concurrent media-stream records (0 = unlimited)")
	fs.DurationVar(&f.FlowTTL, "flow-ttl", 0, "evict per-flow state idle longer than this, folding it into the report (0 = never)")
	fs.StringVar(&f.QuarantinePath, "quarantine", "", "write frames whose processing panicked to this pcap for offline dissection")
	fs.StringVar(&f.Checkpoint, "checkpoint", "", "write engine state to this path (atomic write-rename) every -checkpoint-interval of trace time and on shutdown")
	fs.DurationVar(&f.CheckpointInterval, "checkpoint-interval", time.Minute, "trace-clock cadence between periodic full checkpoints (with -checkpoint)")
	fs.DurationVar(&f.CheckpointDelta, "checkpoint-delta", 0, "trace-clock cadence for incremental (delta) checkpoint records between fulls; enables the chain layout <checkpoint>.NNNNNNNN.{full,delta}.zlcp (0 = full snapshots only)")
	fs.IntVar(&f.CheckpointKeep, "checkpoint-keep", 2, "full-checkpoint generations to retain for crash fallback; restore walks back through them when the newest is torn or corrupt")
	fs.StringVar(&f.Restore, "restore", "", "resume from a checkpoint written by -checkpoint (a legacy file or a chain base path); engine kind and worker count come from the file")
	fs.BoolVar(&f.Shed, "shed", false, "under overload, drop packet batches with accounting when an analysis shard's queue is full instead of stalling ingest (parallel engines; shed counts surface in the report and status line)")
	fs.IntVar(&f.MaxFinished, "max-finished", 0, "cap archived finished streams; at the cap the oldest are dropped and counted (0 = unlimited)")
	fs.DurationVar(&f.Rotate, "rotate", 0, "close and emit the report window every this much trace time, writing <rotate-out>-NNNN.json per window (0 = one report)")
	fs.StringVar(&f.RotateOut, "rotate-out", "zoomlens-window", "path prefix for rotated window report files")
	fs.StringVar(&f.Features, "features", "", "stream per-stream feature rows (header-free QoE inputs) as versioned CSV to this path; \"-\" = stdout")
	fs.DurationVar(&f.FeatureWindow, "feature-window", time.Second, "feature aggregation window on the capture clock (with -features or -predict)")
	fs.BoolVar(&f.Predict, "predict", false, "classify each video feature window with the -model QoE model; predictions surface as zoomlens_qoe_* metrics and qoe_prediction JSON lines on the snapshot sink")
	fs.StringVar(&f.Model, "model", "", "QoE model JSON for -predict (train one with zoomfeatures -train)")
	fs.StringVar(&f.ClusterPart, "cluster-part", "", "run as one cluster worker under this path prefix: export media observations to <prefix>.obs, default the shutdown checkpoint to <prefix>.state.zlcp, and mirror the status JSON to <prefix>.status.json (input should be a zoomsplit stream; requires -workers 1)")
	f.Obs = cliobs.Register(fs)
	f.fs = fs
	return f
}

// workersExplicit reports whether -workers was set on the command line
// (as opposed to left at its default). Without a FlagSet to consult, a
// non-default value is treated as explicit.
func (f *Flags) workersExplicit() bool {
	if f.fs != nil {
		set := false
		f.fs.Visit(func(fl *flag.Flag) {
			if fl.Name == "workers" {
				set = true
			}
		})
		return set
	}
	return f.Workers != 1
}

// Run is one completed analysis run: the engine has ingested the whole
// input (or the prefix before an interrupt/cut) and Finish has run.
// Callers print their report from Analyzer, with the standard defers:
//
//	defer run.Close()             // observability teardown + trace report
//	defer run.EmitStatus()        // status JSON, last line on stderr
//	defer run.Stage("report")()   // report stage timing
type Run struct {
	// Engine is the analysis engine that ingested the capture.
	Engine core.Engine
	// Analyzer is the merged sequential-equivalent result.
	Analyzer *core.Analyzer
	// Setup is the run's observability state.
	Setup *cliobs.Setup
	// Interrupted reports a SIGINT/SIGTERM graceful stop: the report
	// covers every packet read before the signal.
	Interrupted bool
	// Restored reports that the run resumed from a -restore checkpoint.
	Restored bool
	// Checkpoints counts checkpoint files written (periodic + shutdown).
	Checkpoints int
	// Rotations counts report windows closed by -rotate. With rotation
	// on, the final report (run.Analyzer) covers only the last window;
	// earlier windows live in the <rotate-out>-NNNN.json files. Only
	// windows whose report file actually landed are counted; failed
	// writes count under RotateFailures instead.
	Rotations int
	// RotateFailures counts report windows whose file write failed (the
	// window's state is still folded forward into the run).
	RotateFailures int
	// DeltaCheckpoints counts incremental checkpoint records written
	// (Checkpoints counts fulls; together they are the chain).
	DeltaCheckpoints int
	// RestoreFallbacks counts torn/corrupt checkpoint generations the
	// restore path skipped before finding a valid state.
	RestoreFallbacks int
	// TmpCleaned counts orphaned checkpoint temp files swept at startup
	// (debris of a crash mid-write).
	TmpCleaned int
	// FeatureRows counts streaming feature rows drained to the -features
	// CSV (and through the -predict model).
	FeatureRows int
	// Predictions counts video rows the -predict model classified.
	Predictions int

	quarantine  *core.Quarantine
	quarPath    string
	quarFlushed bool
	statusPath  string
	ckm         *obs.CheckpointMetrics
	ck          *Checkpointer
}

// clusterEngine is the engine-side surface a cluster worker needs: an
// observation sink for the aggregator's reconciliation replay, and
// sequence-stamped ingest carrying the splitter's global packet ids.
type clusterEngine interface {
	SetClusterSink(func(core.ClusterObs)) error
	PacketSeq(at time.Time, frame []byte, seq uint64)
}

// Run builds an engine from the flags, streams the whole input through
// it with borrowed (zero-copy) record buffers, and finishes it.
// SIGINT/SIGTERM stops reading gracefully — every packet seen is
// finalized and the status line marks the report partial; a capture cut
// mid-record degrades the same way. zoomNets parameterizes the capture
// filter (the caller passes its Zoom address ranges, keeping this
// package free of policy).
func (f *Flags) Run(zoomNets []netip.Prefix) (*Run, error) {
	if f.Input == "" {
		if f.Restore != "" {
			// Render-only: restore the checkpoint and finish without
			// ingesting anything — how a report is read back out of an
			// aggregated cluster state (or any saved checkpoint).
			return f.RunFrom(zoomNets, func(*pcap.Record) error { return io.EOF }, func() bool { return false })
		}
		return nil, errors.New("missing -i input pcap")
	}
	var file *os.File
	if f.Input == "-" {
		file = os.Stdin
	} else {
		var err error
		file, err = os.Open(f.Input)
		if err != nil {
			return nil, err
		}
		defer file.Close()
	}
	// The stream header is read lazily, inside the first next() call:
	// RunFrom brings observability up first, and with a stdin input the
	// first bytes may arrive long after startup — the metrics endpoint
	// must already be scrapeable (and announced on stderr) while the run
	// waits.
	var stream *pcap.Stream
	next := func(rec *pcap.Record) error {
		if stream == nil {
			var err error
			stream, err = pcap.OpenStream(file)
			if err != nil {
				return err
			}
		}
		return stream.NextInto(rec)
	}
	truncated := func() bool { return stream != nil && stream.Truncated() }
	return f.RunFrom(zoomNets, next, truncated)
}

// RunFrom is Run with the record source abstracted: next fills rec with
// the next record (returning io.EOF at end of input; rec.Data may
// borrow a buffer valid only until the following call) and truncated
// reports whether the source was cut mid-record. It powers both the
// file/stdin path (Run) and synthetic sources — the soak harness drives
// a generated workload through the exact production pipeline, signals,
// checkpoints, and rotation included.
func (f *Flags) RunFrom(zoomNets []netip.Prefix, next func(*pcap.Record) error, truncated func() bool) (*Run, error) {
	protos, err := rtcproto.ParseSet(f.Proto)
	if err != nil {
		return nil, err
	}
	setup, err := f.Obs.Apply()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		ZoomNetworks: zoomNets,
		Protos:       protos,
		MaxFlows:     f.MaxFlows,
		MaxStreams:   f.MaxStreams,
		MaxFinished:  f.MaxFinished,
		FlowTTL:      f.FlowTTL,
		Shed:         f.Shed,
		Obs:          setup.Registry,
		Tracer:       setup.Tracer,
	}
	if f.ClusterPart != "" {
		// A cluster worker's stream was already classified by the
		// splitter; keeping every delivered frame preserves the exact
		// accounting split a single engine's dispatch path would produce.
		cfg.PreFiltered = true
	}
	var fsink *featureSink
	if f.Features != "" || f.Predict {
		if f.ClusterPart != "" {
			// A worker's observations ride the cluster sink instead of the
			// local reconciliation path, so its windower would see nothing;
			// the aggregator builds the rows (zoomagg -features).
			setup.Close()
			return nil, errors.New("engine: -features/-predict are unavailable with -cluster-part; feature rows for a cluster run come from zoomagg -features")
		}
		fw := f.FeatureWindow
		if fw <= 0 {
			fw = time.Second
		}
		cfg.FeatureWindow = fw
		fsink, err = newFeatureSink(f, setup, fw)
		if err != nil {
			setup.Close()
			return nil, err
		}
	}
	run := &Run{Setup: setup, quarPath: f.QuarantinePath}
	run.ckm = obs.NewCheckpointMetrics(setup.Registry)
	if f.QuarantinePath != "" {
		run.quarantine = core.NewQuarantine(0)
		cfg.Quarantine = run.quarantine
	}
	// In cluster-part mode the shutdown checkpoint is the worker's
	// contribution to the merged report, so it defaults on.
	ckPath := f.Checkpoint
	if ckPath == "" && f.ClusterPart != "" {
		ckPath = f.ClusterPart + ".state.zlcp"
	}
	if ckPath != "" {
		run.ck = NewCheckpointer(ckPath, f.CheckpointKeep, f.CheckpointDelta > 0, run.ckm)
		run.TmpCleaned = run.ck.TmpCleaned
	}
	if f.ClusterPart != "" {
		run.statusPath = f.ClusterPart + ".status.json"
	}
	// The parallel analyzer produces byte-identical results at any worker
	// count (workers == 1 is the plain sequential analyzer). A restored
	// run takes its engine kind and worker count from the checkpoint —
	// shard-partitioned state only lines up at the worker count it was
	// saved at.
	var eng core.Engine
	if f.Restore != "" {
		var fallbacks int
		eng, fallbacks, err = RestoreEngine(f.Restore, cfg, run.ckm)
		if err != nil {
			fsink.discard()
			setup.Close()
			return nil, err
		}
		run.Restored = true
		run.RestoreFallbacks = fallbacks
		run.ckm.Restored.Inc()
		if fallbacks > 0 {
			log.Printf("restore: skipped %d torn or corrupt checkpoint generation(s)", fallbacks)
		}
		// The checkpoint's worker count always wins over -workers; warn
		// whenever the flag was explicitly set to something else. A
		// restored sequential engine counts as 1 worker — an explicit
		// -workers 4 against it is just as ignored as 4 against a
		// 2-worker parallel checkpoint.
		if f.workersExplicit() {
			ckWorkers := 1
			if pa, ok := eng.(*core.ParallelAnalyzer); ok {
				ckWorkers = pa.Workers()
			}
			if ckWorkers != f.Workers {
				log.Printf("restore: checkpoint was taken at %d worker(s); ignoring -workers=%d", ckWorkers, f.Workers)
			}
		}
	} else {
		eng = core.NewParallelAnalyzer(cfg, f.Workers)
	}
	run.Engine = eng
	if f.engineHook != nil {
		f.engineHook(eng)
	}

	// Cluster-part wiring: divert media observations to <prefix>.obs
	// (append mode, so a migrated worker's second life extends the same
	// log) and stamp ingest with the splitter's global sequence numbers.
	var clusterIngest func(*pcap.Record)
	var obsLog *cluster.ObsWriter
	var obsFile *os.File
	closeObsLog := func() {
		if obsLog == nil {
			return
		}
		if err := obsLog.Flush(); err != nil {
			log.Printf("cluster obs log: %v", err)
		}
		if err := obsFile.Close(); err != nil {
			log.Printf("cluster obs log: %v", err)
		}
		obsLog, obsFile = nil, nil
	}
	if f.ClusterPart != "" {
		ce, ok := eng.(clusterEngine)
		var cerr error
		if !ok {
			cerr = errors.New("engine: this engine cannot run as a cluster part")
		} else {
			obsFile, cerr = os.OpenFile(f.ClusterPart+".obs", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if cerr == nil {
				obsLog = cluster.NewObsWriter(obsFile)
				cerr = ce.SetClusterSink(obsLog.Add)
			}
		}
		if cerr != nil {
			core.Discard(eng)
			if obsFile != nil {
				obsFile.Close()
			}
			setup.Close()
			return nil, cerr
		}
		var localSeq uint64
		clusterIngest = func(rec *pcap.Record) {
			seq := rec.PacketID
			if !rec.HasPacketID {
				// Not a splitter stream (plain pcap, or pcapng without
				// epb_packetid): a local 1-based counter preserves this
				// worker's own order. Cross-worker order needs the
				// splitter's ids.
				localSeq++
				seq = localSeq
			}
			ce.PacketSeq(rec.Timestamp, rec.Data, seq)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	// Periodic QoE snapshots fire on the capture clock, so offline
	// replays emit exactly what a live tap would have.
	sw := f.Obs.SnapshotWriter(setup, eng.Snapshot)
	var lastTS time.Time
	var rec pcap.Record
	// Rotation, checkpoint, and feature-drain deadlines run on the trace
	// clock, armed by the first packet. Full checkpoints run on
	// -checkpoint-interval; delta records on the (typically much
	// shorter) -checkpoint-delta cadence between them.
	var rotateAt, winStart, ckptAt, deltaAt, drainAt time.Time
	ingestDone := setup.Stage("ingest")
readLoop:
	for {
		select {
		case <-sig:
			run.Interrupted = true
			break readLoop
		default:
		}
		err := next(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Tear the run down completely: a live parallel engine holds
			// shard goroutines that must not outlive a failed run. The
			// panic quarantine still flushes — the frames that poisoned
			// the run up to this point are exactly the ones worth
			// dissecting offline.
			signal.Stop(sig)
			core.Discard(eng)
			run.flushQuarantine()
			closeObsLog()
			if cerr := fsink.close(); cerr != nil {
				log.Print(cerr)
			}
			setup.Close()
			return nil, err
		}
		// Rotate before ingesting: the packet that crosses the boundary
		// opens the next window.
		if f.Rotate > 0 {
			if rotateAt.IsZero() {
				rotateAt = rec.Timestamp.Add(f.Rotate)
				winStart = rec.Timestamp
			} else if !rec.Timestamp.Before(rotateAt) {
				run.rotateWindow(eng, winStart, rec.Timestamp, f.RotateOut)
				winStart = rec.Timestamp
				for !rec.Timestamp.Before(rotateAt) {
					rotateAt = rotateAt.Add(f.Rotate)
				}
			}
		}
		if clusterIngest != nil {
			clusterIngest(&rec)
		} else {
			eng.Packet(rec.Timestamp, rec.Data)
		}
		lastTS = rec.Timestamp
		sw.Tick(rec.Timestamp)
		if fsink != nil {
			if drainAt.IsZero() {
				drainAt = rec.Timestamp.Add(fsink.every)
			} else if !rec.Timestamp.Before(drainAt) {
				fsink.drain(eng.DrainFeatures())
				for !rec.Timestamp.Before(drainAt) {
					drainAt = drainAt.Add(fsink.every)
				}
			}
		}
		if run.ck != nil && f.CheckpointInterval > 0 {
			if ckptAt.IsZero() {
				ckptAt = rec.Timestamp.Add(f.CheckpointInterval)
			} else if !rec.Timestamp.Before(ckptAt) {
				run.writeFull(eng)
				for !rec.Timestamp.Before(ckptAt) {
					ckptAt = ckptAt.Add(f.CheckpointInterval)
				}
				// A full re-anchors the chain; push the next delta a full
				// cadence out instead of writing one immediately after.
				if f.CheckpointDelta > 0 {
					deltaAt = rec.Timestamp.Add(f.CheckpointDelta)
				}
			}
		}
		if run.ck != nil && f.CheckpointDelta > 0 {
			if deltaAt.IsZero() {
				deltaAt = rec.Timestamp.Add(f.CheckpointDelta)
			} else if !rec.Timestamp.Before(deltaAt) {
				run.writeDelta(eng)
				for !rec.Timestamp.Before(deltaAt) {
					deltaAt = deltaAt.Add(f.CheckpointDelta)
				}
			}
		}
	}
	ingestDone()
	select {
	case <-sig:
		run.Interrupted = true
	default:
	}
	signal.Stop(sig)
	// The shutdown checkpoint lands before Finish so a parallel run's
	// file keeps its parallel payload (restorable at the same worker
	// count); it covers every packet ingested, interrupt included. It is
	// always a full snapshot — the next start restores from it alone.
	if run.ck != nil {
		run.writeFull(eng)
	}
	eng.Finish()
	// Finish closed every open feature window; the final drain picks the
	// partials up, completing the CSV.
	if fsink != nil {
		fsink.drain(eng.DrainFeatures())
		if err := fsink.close(); err != nil {
			log.Print(err)
		}
		run.FeatureRows = fsink.rows
		run.Predictions = fsink.predictions
	}
	// Finishing emits no observations, so the log is complete here; it
	// must be on disk before the aggregator can be pointed at it.
	closeObsLog()
	if !lastTS.IsZero() {
		sw.Flush(lastTS)
	}
	if err := sw.Err(); err != nil {
		log.Printf("snapshots: %v", err)
	}
	run.Analyzer = eng.Result()
	if truncated() {
		run.Analyzer.Truncated = true
	}
	return run, nil
}

// countWriter counts bytes on their way to the underlying writer so a
// checkpoint's size can be reported without buffering it twice.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// writeFull writes a periodic/shutdown full checkpoint. Failures are
// logged and counted, not fatal — losing one checkpoint must not kill
// the tap.
func (r *Run) writeFull(eng core.Engine) {
	if err := r.ck.WriteFull(eng); err != nil {
		log.Printf("checkpoint %s: %v", r.ck.path, err)
		return
	}
	r.Checkpoints++
}

// writeDelta writes an incremental checkpoint record (falling back to a
// full snapshot inside the Checkpointer when the engine has no chain to
// extend). Same never-fatal policy as writeFull.
func (r *Run) writeDelta(eng core.Engine) {
	before := r.ck.Fulls
	if err := r.ck.WriteDelta(eng); err != nil {
		log.Printf("checkpoint %s: %v", r.ck.path, err)
		return
	}
	r.Checkpoints += r.ck.Fulls - before
	r.DeltaCheckpoints = r.ck.Deltas
}

// windowReport is the JSON written per rotated window: the window's
// bounds on the trace clock plus its full capture roll-up.
type windowReport struct {
	Window  int          `json:"window"`
	Start   time.Time    `json:"start"`
	End     time.Time    `json:"end"`
	Summary core.Summary `json:"summary"`
}

// rotateWindow closes the current report window and writes its roll-up
// to <prefix>-NNNN.json. Report-file failures are logged and counted,
// never fatal — and they do not consume a window index or count as a
// rotation, so the Rotations counter (and the NNNN numbering) tracks
// reports that actually landed on disk.
func (r *Run) rotateWindow(eng core.Engine, start, end time.Time, prefix string) {
	win := eng.Rotate(end)
	path := fmt.Sprintf("%s-%04d.json", prefix, r.Rotations)
	data, err := json.Marshal(windowReport{
		Window: r.Rotations, Start: start, End: end, Summary: win.Summary(),
	})
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		log.Printf("rotate %s: %v", path, err)
		r.RotateFailures++
		r.ckm.RotateFailures.Inc()
		return
	}
	r.Rotations++
	r.ckm.Rotations.Inc()
}

// Stage times one CLI stage under the run's tracer (no-op when tracing
// is off). Use as: defer run.Stage("report")().
func (r *Run) Stage(name string) func() { return r.Setup.Stage(name) }

// Close tears the observability surface down and prints the stage
// report. Register it first so it runs after EmitStatus — the status
// JSON must stay the last stderr line when tracing is off.
func (r *Run) Close() { r.Setup.Close() }

// EmitStatus prints one JSON object on stderr describing how the run
// ended: whether the report is partial (interrupted or truncated input)
// and the hardening counters an operator needs to trust it. It also
// flushes the panic quarantine when one was requested.
func (r *Run) EmitStatus() {
	s := r.Analyzer.Summary()
	reason := ""
	switch {
	case r.Interrupted:
		reason = "interrupted"
	case s.Truncated:
		reason = "truncated_capture"
	}
	quarantined, quarDropped := r.flushQuarantine()
	// Per-plugin decode counters mirror the zoomlens_proto_* metrics so
	// a cluster aggregator (or an operator tailing stderr) sees the
	// protocol mix without a metrics scrape.
	protoFields := ""
	for i, v := range s.ProtoDecoded {
		protoFields += fmt.Sprintf(`,"proto_decoded_%s":%d`, rtcproto.NameOf(uint8(i)), v)
	}
	line := fmt.Sprintf(
		`{"partial":%t,"reason":%q,"packets":%d,"flows":%d,"streams":%d,"evicted_flows":%d,"evicted_streams":%d,"rejected_packets":%d,"panics_recovered":%d,"quarantined":%d,"quarantine_dropped":%d,"shed_packets":%d,"shed_bytes":%d,"truncated":%t,"checkpoints":%d,"delta_checkpoints":%d,"restore_fallbacks":%d,"tmp_cleaned":%d,"restored":%t,"rotations":%d,"rotate_failures":%d%s,"proto_undecodable":%d,"stun_port_nonstun":%d}`,
		r.Interrupted || s.Truncated, reason, s.Packets, s.Flows, s.Streams,
		s.EvictedFlows, s.EvictedStreams, s.RejectedPackets, s.PanicsRecovered, quarantined, quarDropped,
		s.ShedPackets, s.ShedBytes, s.Truncated, r.Checkpoints, r.DeltaCheckpoints, r.RestoreFallbacks, r.TmpCleaned,
		r.Restored, r.Rotations, r.RotateFailures, protoFields, s.Undecodable, s.STUNPortNonSTUN)
	fmt.Fprintln(os.Stderr, line)
	if r.statusPath != "" {
		if err := os.WriteFile(r.statusPath, []byte(line+"\n"), 0o644); err != nil {
			log.Printf("status file: %v", err)
		}
	}
}

// flushQuarantine writes the quarantined frames to the -quarantine pcap
// (once per run — a mid-run teardown may have flushed already) and
// returns the quarantine counters. It runs both from EmitStatus and
// from the read-error teardown path, so frames captured before a
// source failure are never silently discarded with the engine.
func (r *Run) flushQuarantine() (quarantined, dropped uint64) {
	if r.quarantine == nil {
		return 0, 0
	}
	quarantined, dropped = r.quarantine.Total(), r.quarantine.Dropped()
	if quarantined == 0 || r.quarFlushed {
		return quarantined, dropped
	}
	r.quarFlushed = true
	qf, err := os.Create(r.quarPath)
	if err != nil {
		log.Print(err)
		return quarantined, dropped
	}
	if err := r.quarantine.WritePCAP(qf); err != nil {
		log.Print(err)
	}
	qf.Close()
	return quarantined, dropped
}
