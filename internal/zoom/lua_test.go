package zoom

import (
	"strings"
	"testing"
)

func TestGenerateLuaDissectorStructure(t *testing.T) {
	src := GenerateLuaDissector()
	for _, want := range []string{
		`Proto("zoom"`,
		`Dissector.get("rtp")`,
		`Dissector.get("rtcp")`,
		`DissectorTable.get("udp.port"):add(8801, zoom)`,
		"zoom.media.frame_seq",
		"zoom.sfu.direction",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("dissector missing %q", want)
		}
	}
	// Every media type value and its header length must appear in the
	// generated tables (keeping the plugin in lockstep with the codec).
	for _, mt := range []MediaType{TypeScreenShare, TypeAudio, TypeVideo, TypeRTCPSR, TypeRTCPSRSDES} {
		typeEntry := "[" + itoa(int(mt)) + "] = "
		if strings.Count(src, typeEntry) != 2 { // name table + length table
			t.Errorf("type %d appears %d times, want 2", mt, strings.Count(src, typeEntry))
		}
		lenEntry := itoa(mt.HeaderLen())
		if !strings.Contains(src, "= "+lenEntry+",") {
			t.Errorf("header length %s for %v missing", lenEntry, mt)
		}
	}
	// Video field offsets from Table 1.
	if !strings.Contains(src, "tvb(21,2)") || !strings.Contains(src, "tvb(23,1)") {
		t.Error("video frame fields not at Table 1 offsets")
	}
	if !strings.Contains(src, "tvb(9,2)") || !strings.Contains(src, "tvb(11,4)") {
		t.Error("media seq/timestamp not at Table 1 offsets")
	}
	// Cheap syntactic sanity: parens balance and every block has an end.
	if strings.Count(src, "(") != strings.Count(src, ")") {
		t.Error("unbalanced parentheses in generated Lua")
	}
	ends := strings.Count(src, "end")
	blocks := strings.Count(src, "function") + strings.Count(src, "if ")
	if ends < blocks {
		t.Errorf("blocks=%d ends=%d: missing end?", blocks, ends)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
