package zoom

import (
	"testing"

	"zoomlens/internal/rtp"
)

// FuzzZoomParse drives the Zoom encapsulation parser with arbitrary UDP
// payloads in every layout mode. The contract under fuzzing is the
// production-hardening contract: never panic, and any payload that
// parses must re-marshal and re-parse cleanly.
func FuzzZoomParse(f *testing.F) {
	// Seed with the valid packets the simulator emits: server-based and
	// P2P layouts for each media type, plus an RTCP sender report.
	seed := func(p Packet) {
		b, err := p.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	for _, mt := range []MediaType{TypeScreenShare, TypeAudio, TypeVideo} {
		for _, serverBased := range []bool{true, false} {
			seed(Packet{
				ServerBased: serverBased,
				SFU:         SFUEncap{Type: SFUTypeMedia, Sequence: 7, Direction: DirFromSFU},
				Media:       MediaEncap{Type: mt, Sequence: 3, Timestamp: 90000, PacketsInFrame: 2},
				RTP: rtp.Packet{
					Header:  rtp.Header{PayloadType: 98, SequenceNumber: 100, Timestamp: 90000, SSRC: 0xfeedf00d},
					Payload: []byte("media-bytes"),
				},
			})
		}
	}
	seed(Packet{
		ServerBased: true,
		SFU:         SFUEncap{Type: SFUTypeMedia, Direction: DirToSFU},
		Media:       MediaEncap{Type: TypeRTCPSR},
		RTCP:        rtp.CompoundPacket{SenderReports: []rtp.SenderReport{{SSRC: 1, NTPTS: 2, RTPTS: 3}}},
	})
	f.Add([]byte{})
	f.Add([]byte{SFUTypeMedia})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mode := range []Mode{ModeAuto, ModeServer, ModeP2P} {
			p, err := ParsePacket(data, mode)
			if err != nil {
				continue
			}
			// Exercise the accessors a capped analyzer calls per packet.
			_ = p.IsMedia()
			_ = p.MediaPayloadLen()
			out, err := p.Marshal()
			if err != nil {
				// Legal: e.g. a parsed RTCP compound without a sender
				// report cannot be re-marshaled.
				continue
			}
			if _, err := ParsePacket(out, mode); err != nil {
				t.Fatalf("mode %v: re-parse of marshal output failed: %v", mode, err)
			}
		}
	})
}
