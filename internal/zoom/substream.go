package zoom

import "fmt"

// Substream classifies the (media type, RTP payload type) combinations
// listed in Table 3 of the paper.
type Substream int

// Substream kinds.
const (
	SubUnknown Substream = iota
	SubVideoMain
	SubVideoFEC
	SubAudioSpeaking
	SubAudioSilent
	SubAudioMobile
	SubAudioFEC
	SubScreenShareMain
)

func (s Substream) String() string {
	switch s {
	case SubVideoMain:
		return "video/main"
	case SubVideoFEC:
		return "video/fec"
	case SubAudioSpeaking:
		return "audio/speaking"
	case SubAudioSilent:
		return "audio/silent"
	case SubAudioMobile:
		return "audio/mobile"
	case SubAudioFEC:
		return "audio/fec"
	case SubScreenShareMain:
		return "screenshare/main"
	}
	return "unknown"
}

// IsFEC reports whether the substream carries forward error correction.
func (s Substream) IsFEC() bool { return s == SubVideoFEC || s == SubAudioFEC }

// ClassifySubstream maps a media type and RTP payload type to a substream
// kind per Table 3.
func ClassifySubstream(mt MediaType, pt uint8) Substream {
	switch mt {
	case TypeVideo:
		switch pt {
		case PTVideoMain:
			return SubVideoMain
		case PTFEC:
			return SubVideoFEC
		}
	case TypeAudio:
		switch pt {
		case PTAudioSpeak:
			return SubAudioSpeaking
		case PTAudioSilent:
			return SubAudioSilent
		case PTAudioMobile:
			return SubAudioMobile
		case PTFEC:
			return SubAudioFEC
		}
	case TypeScreenShare:
		if pt == PTScreenShare {
			return SubScreenShareMain
		}
	}
	return SubUnknown
}

// StreamKey identifies one media stream within one UDP flow: the RTP SSRC
// together with the Zoom media type. Zoom multiplexes up to three media
// types (and their RTCP) over a single UDP flow (§3), and SSRCs are only
// unique within a meeting (§4.2.3).
type StreamKey struct {
	SSRC uint32
	Type MediaType
	// Proto tags the application protocol whose decoder produced the
	// stream. 0 is Zoom's proprietary encapsulation (the zero value, so
	// every key constructed by the Zoom pipeline is already correct);
	// other values are assigned in internal/rtcproto. Proto is part of
	// the stream identity: equal SSRCs from different applications never
	// unify, dedup, or share metric engines.
	Proto uint8
}

func (k StreamKey) String() string {
	if k.Proto == 0 {
		return fmt.Sprintf("%s/ssrc=%d", k.Type, k.SSRC)
	}
	return fmt.Sprintf("%s/ssrc=%d/proto=%d", k.Type, k.SSRC, k.Proto)
}
