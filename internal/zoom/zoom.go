// Package zoom implements the proprietary Zoom packet encapsulations
// reverse-engineered in §4.2 of the paper: the 8-byte Zoom SFU
// encapsulation that prefixes server-based traffic, and the
// variable-length Zoom media encapsulation that precedes RTP or RTCP in
// both server-based and peer-to-peer traffic.
//
// Field positions and type values follow Tables 1 and 2 of the paper
// exactly:
//
//	SFU encapsulation (server-based traffic only, 8 bytes):
//	  byte 0    type (0x05 ⇒ a media encapsulation follows; 98.4 % of pkts)
//	  bytes 1-2 sequence number (big endian)
//	  bytes 3-6 reserved / not understood
//	  byte 7    direction: 0x00 to SFU, 0x04 from SFU
//
//	Media encapsulation (length depends on the type byte):
//	  byte 0      type: 13 screen share, 15 audio, 16 video, 33/34 RTCP
//	  bytes 9-10  sequence number (big endian)
//	  bytes 11-14 timestamp (big endian)
//	  video only:
//	  bytes 21-22 frame sequence number (big endian)
//	  byte 23     number of packets in the frame
//
//	RTP/RTCP offset from the start of the media encapsulation:
//	  video 24, audio 19, screen share 27, RTCP 16
//	(Table 2 lists these offsets from the end of the UDP header for P2P
//	traffic; server-based traffic adds the 8-byte SFU encapsulation.)
package zoom

import (
	"encoding/binary"
	"errors"
	"fmt"

	"zoomlens/internal/rtp"
)

// ServerMediaPort is the UDP port Zoom servers (multimedia routers) use
// for media traffic.
const ServerMediaPort = 8801

// SFU encapsulation constants.
const (
	SFUEncapLen = 8
	// SFUTypeMedia marks an SFU encapsulation carrying a media
	// encapsulation (type value 5; 98.4 % of server-based packets in the
	// paper's trace).
	SFUTypeMedia = 0x05
	// DirToSFU and DirFromSFU are the observed direction byte values.
	DirToSFU   = 0x00
	DirFromSFU = 0x04
)

// MediaType is the media encapsulation type byte.
type MediaType uint8

// Media encapsulation type values (Table 2).
const (
	TypeScreenShare MediaType = 13
	TypeAudio       MediaType = 15
	TypeVideo       MediaType = 16
	TypeRTCPSR      MediaType = 33 // RTCP sender report
	TypeRTCPSRSDES  MediaType = 34 // RTCP SR + source description
)

// IsRTP reports whether the type carries an RTP media packet.
func (t MediaType) IsRTP() bool {
	return t == TypeScreenShare || t == TypeAudio || t == TypeVideo
}

// IsRTCP reports whether the type carries RTCP.
func (t MediaType) IsRTCP() bool { return t == TypeRTCPSR || t == TypeRTCPSRSDES }

// HeaderLen returns the media encapsulation header length for the type
// (the offset at which RTP/RTCP begins), or 0 for unknown types.
func (t MediaType) HeaderLen() int {
	switch t {
	case TypeVideo:
		return 24
	case TypeAudio:
		return 19
	case TypeScreenShare:
		return 27
	case TypeRTCPSR, TypeRTCPSRSDES:
		return 16
	}
	return 0
}

func (t MediaType) String() string {
	switch t {
	case TypeScreenShare:
		return "screenshare"
	case TypeAudio:
		return "audio"
	case TypeVideo:
		return "video"
	case TypeRTCPSR:
		return "rtcp-sr"
	case TypeRTCPSRSDES:
		return "rtcp-sr-sdes"
	}
	return fmt.Sprintf("unknown(%d)", uint8(t))
}

// RTP payload types observed inside Zoom streams (Table 3).
const (
	PTVideoMain   uint8 = 98  // video main stream
	PTAudioSpeak  uint8 = 112 // audio while participant is talking
	PTFEC         uint8 = 110 // forward error correction substream
	PTScreenShare uint8 = 99  // screen share main stream (also audio silent)
	PTAudioSilent uint8 = 99  // audio during silence: fixed 40-byte payload
	PTAudioMobile uint8 = 113 // audio, mode unknown (mobile clients)
)

// SilentAudioPayloadLen is the fixed RTP payload size of silent-mode audio
// packets (type 99 in audio streams).
const SilentAudioPayloadLen = 40

// VideoClockRate is the RTP timestamp clock of Zoom video streams
// discovered in §5.2 (also RFC 3551's recommendation for video).
const VideoClockRate = 90000

// AudioClockRate is the presumed audio sampling clock. The paper is not
// certain of audio/screen-share clocks (§6.2) and neither are we; the
// simulator uses 16 kHz for audio timestamps.
const AudioClockRate = 16000

// Errors returned by the parser.
var (
	ErrTruncated   = errors.New("zoom: truncated packet")
	ErrUnknownType = errors.New("zoom: unknown encapsulation type")
)

// SFUEncap is a decoded Zoom SFU encapsulation header.
type SFUEncap struct {
	Type      uint8
	Sequence  uint16
	Direction uint8
	// Reserved preserves bytes 3-6, which the paper does not decode.
	Reserved [4]byte
}

// FromSFU reports whether the direction byte marks server-to-client
// traffic.
func (s *SFUEncap) FromSFU() bool { return s.Direction == DirFromSFU }

// ParseSFUEncap decodes the 8-byte SFU encapsulation and returns the rest
// of the payload.
func ParseSFUEncap(data []byte) (SFUEncap, []byte, error) {
	var s SFUEncap
	if len(data) < SFUEncapLen {
		return s, nil, fmt.Errorf("%w: sfu encapsulation needs %d bytes, have %d", ErrTruncated, SFUEncapLen, len(data))
	}
	s.Type = data[0]
	s.Sequence = binary.BigEndian.Uint16(data[1:3])
	copy(s.Reserved[:], data[3:7])
	s.Direction = data[7]
	return s, data[SFUEncapLen:], nil
}

// AppendMarshal appends the wire form of s to dst.
func (s *SFUEncap) AppendMarshal(dst []byte) []byte {
	dst = append(dst, s.Type)
	dst = binary.BigEndian.AppendUint16(dst, s.Sequence)
	dst = append(dst, s.Reserved[:]...)
	dst = append(dst, s.Direction)
	return dst
}

// MediaEncap is a decoded Zoom media encapsulation header.
type MediaEncap struct {
	Type      MediaType
	Sequence  uint16
	Timestamp uint32
	// FrameSequence and PacketsInFrame are only meaningful for video
	// (Type == TypeVideo).
	FrameSequence  uint16
	PacketsInFrame uint8
	// Raw aliases the full wire-format header as parsed (like
	// rtp.Packet.Payload, it shares the input buffer). It preserves the
	// bytes the paper does not decode so that marshal(parse(x)) == x;
	// nil for packets constructed in memory.
	Raw []byte
}

// ParseMediaEncap decodes a media encapsulation header and returns the
// encapsulated payload (RTP or RTCP).
func ParseMediaEncap(data []byte) (MediaEncap, []byte, error) {
	var m MediaEncap
	if len(data) < 1 {
		return m, nil, fmt.Errorf("%w: empty media encapsulation", ErrTruncated)
	}
	m.Type = MediaType(data[0])
	hl := m.Type.HeaderLen()
	if hl == 0 {
		return m, nil, fmt.Errorf("%w: media type %d", ErrUnknownType, data[0])
	}
	if len(data) < hl {
		return m, nil, fmt.Errorf("%w: media encapsulation type %s needs %d bytes, have %d", ErrTruncated, m.Type, hl, len(data))
	}
	m.Sequence = binary.BigEndian.Uint16(data[9:11])
	m.Timestamp = binary.BigEndian.Uint32(data[11:15])
	if m.Type == TypeVideo {
		m.FrameSequence = binary.BigEndian.Uint16(data[21:23])
		m.PacketsInFrame = data[23]
	}
	m.Raw = data[:hl]
	return m, data[hl:], nil
}

// AppendMarshal appends the wire form of m to dst. When Raw is present
// (from a previous parse), its undecoded bytes are preserved; otherwise
// those positions are zero.
func (m *MediaEncap) AppendMarshal(dst []byte) ([]byte, error) {
	hl := m.Type.HeaderLen()
	if hl == 0 {
		return dst, fmt.Errorf("%w: media type %d", ErrUnknownType, uint8(m.Type))
	}
	start := len(dst)
	if len(m.Raw) == hl {
		dst = append(dst, m.Raw...)
	} else {
		dst = append(dst, make([]byte, hl)...)
	}
	hdr := dst[start : start+hl]
	hdr[0] = uint8(m.Type)
	binary.BigEndian.PutUint16(hdr[9:11], m.Sequence)
	binary.BigEndian.PutUint32(hdr[11:15], m.Timestamp)
	if m.Type == TypeVideo {
		binary.BigEndian.PutUint16(hdr[21:23], m.FrameSequence)
		hdr[23] = m.PacketsInFrame
	}
	return dst, nil
}

// Packet is a fully parsed Zoom UDP payload.
type Packet struct {
	// ServerBased reports whether an SFU encapsulation was present.
	ServerBased bool
	SFU         SFUEncap
	Media       MediaEncap
	// RTP is set for media types 13/15/16.
	RTP rtp.Packet
	// RTCP is set for media types 33/34.
	RTCP rtp.CompoundPacket
}

// IsMedia reports whether the packet carries an RTP media payload.
func (p *Packet) IsMedia() bool { return p.Media.Type.IsRTP() }

// MediaPayloadLen returns the RTP payload length of a media packet (the
// quantity summed for per-media bit rates, §5.1), or 0 for RTCP.
func (p *Packet) MediaPayloadLen() int {
	if !p.IsMedia() {
		return 0
	}
	return len(p.RTP.Payload)
}

// Mode distinguishes server-based from peer-to-peer payload layouts.
type Mode int

// Payload layout modes.
const (
	// ModeAuto tries server-based first, then P2P.
	ModeAuto Mode = iota
	// ModeServer expects an SFU encapsulation first.
	ModeServer
	// ModeP2P expects a media encapsulation immediately.
	ModeP2P
)

// ParsePacket decodes a Zoom UDP payload. In ModeAuto it accepts both
// layouts, preferring the server-based interpretation when the first byte
// is the SFU media type marker and the inner parse succeeds.
func ParsePacket(payload []byte, mode Mode) (Packet, error) {
	var p Packet
	tryServer := func() error {
		sfu, rest, err := ParseSFUEncap(payload)
		if err != nil {
			return err
		}
		if sfu.Type != SFUTypeMedia {
			return fmt.Errorf("%w: sfu type %d", ErrUnknownType, sfu.Type)
		}
		if err := p.parseInner(rest); err != nil {
			return err
		}
		p.ServerBased = true
		p.SFU = sfu
		return nil
	}
	switch mode {
	case ModeServer:
		return p, firstErr(tryServer(), &p)
	case ModeP2P:
		return p, firstErr(p.parseInner(payload), &p)
	default:
		if len(payload) > 0 && payload[0] == SFUTypeMedia {
			if err := tryServer(); err == nil {
				return p, nil
			}
			p = Packet{}
		}
		if err := p.parseInner(payload); err == nil {
			return p, nil
		}
		p = Packet{}
		return p, firstErr(tryServer(), &p)
	}
}

func firstErr(err error, p *Packet) error {
	if err != nil {
		*p = Packet{}
	}
	return err
}

func (p *Packet) parseInner(data []byte) error {
	media, rest, err := ParseMediaEncap(data)
	if err != nil {
		return err
	}
	switch {
	case media.Type.IsRTP():
		rp, err := rtp.Parse(rest)
		if err != nil {
			return fmt.Errorf("zoom: media type %s: %w", media.Type, err)
		}
		p.RTP = rp
	case media.Type.IsRTCP():
		cp, err := rtp.ParseCompound(rest)
		if err != nil {
			return fmt.Errorf("zoom: media type %s: %w", media.Type, err)
		}
		p.RTCP = cp
	}
	p.Media = media
	return nil
}

// Marshal serializes the packet (SFU encapsulation if ServerBased, media
// encapsulation, then the RTP or RTCP body).
func (p *Packet) Marshal() ([]byte, error) {
	var out []byte
	if p.ServerBased {
		out = p.SFU.AppendMarshal(out)
	}
	out, err := p.Media.AppendMarshal(out)
	if err != nil {
		return nil, err
	}
	switch {
	case p.Media.Type.IsRTP():
		out, err = p.RTP.AppendMarshal(out)
		if err != nil {
			return nil, err
		}
	case p.Media.Type.IsRTCP():
		if len(p.RTCP.SenderReports) == 0 {
			// A parsed compound can legally hold no sender report (e.g.
			// receiver-report-only); refuse rather than index past it.
			return nil, fmt.Errorf("zoom: rtcp packet has no sender report to marshal")
		}
		out = append(out, rtp.MarshalSR(p.RTCP.SenderReports[0], p.Media.Type == TypeRTCPSRSDES)...)
	}
	return out, nil
}
