package zoom

import (
	"zoomlens/internal/statecodec"
)

// Checkpoint codec for the substream-tracking identity: every stateful
// layer above (flow table substream accounting, metric engines, stream
// unification) keys on StreamKey, so it encodes here, once. Like
// layers.FiveTuple, the key is pure state — the containing layer's
// version byte governs.

// EncodeTo appends the key's wire form to w. The Proto byte joined the
// encoding when the key gained the field; every containing layer bumped
// its version byte in the same change, so no reader ever sees a
// Proto-less key under a current version.
func (k StreamKey) EncodeTo(w *statecodec.Writer) {
	w.U32(k.SSRC)
	w.U8(uint8(k.Type))
	w.U8(k.Proto)
}

// DecodeStreamKey reads a key written by EncodeTo.
func DecodeStreamKey(r *statecodec.Reader) StreamKey {
	return StreamKey{SSRC: r.U32(), Type: MediaType(r.U8()), Proto: r.U8()}
}

// Compare orders keys by (SSRC, Type, Proto) for deterministic
// checkpoint encoding. Proto breaks ties last so all-Zoom state orders
// exactly as before the field existed.
func (k StreamKey) Compare(o StreamKey) int {
	if k.SSRC != o.SSRC {
		if k.SSRC < o.SSRC {
			return -1
		}
		return 1
	}
	if k.Type != o.Type {
		if k.Type < o.Type {
			return -1
		}
		return 1
	}
	if k.Proto != o.Proto {
		if k.Proto < o.Proto {
			return -1
		}
		return 1
	}
	return 0
}
