package zoom

import (
	"zoomlens/internal/statecodec"
)

// Checkpoint codec for the substream-tracking identity: every stateful
// layer above (flow table substream accounting, metric engines, stream
// unification) keys on StreamKey, so it encodes here, once. Like
// layers.FiveTuple, the key is pure state — the containing layer's
// version byte governs.

// EncodeTo appends the key's wire form to w.
func (k StreamKey) EncodeTo(w *statecodec.Writer) {
	w.U32(k.SSRC)
	w.U8(uint8(k.Type))
}

// DecodeStreamKey reads a key written by EncodeTo.
func DecodeStreamKey(r *statecodec.Reader) StreamKey {
	return StreamKey{SSRC: r.U32(), Type: MediaType(r.U8())}
}

// Compare orders keys by (SSRC, Type) for deterministic checkpoint
// encoding.
func (k StreamKey) Compare(o StreamKey) int {
	if k.SSRC != o.SSRC {
		if k.SSRC < o.SSRC {
			return -1
		}
		return 1
	}
	if k.Type != o.Type {
		if k.Type < o.Type {
			return -1
		}
		return 1
	}
	return 0
}
