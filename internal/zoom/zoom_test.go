package zoom

import (
	"bytes"
	"testing"
	"testing/quick"

	"zoomlens/internal/rtp"
)

func videoPacket(serverBased bool) Packet {
	p := Packet{
		ServerBased: serverBased,
		Media: MediaEncap{
			Type:           TypeVideo,
			Sequence:       100,
			Timestamp:      900000,
			FrameSequence:  17,
			PacketsInFrame: 3,
		},
		RTP: rtp.Packet{
			Header: rtp.Header{
				PayloadType:    PTVideoMain,
				SequenceNumber: 555,
				Timestamp:      900000,
				SSRC:           16778241,
				Marker:         true,
			},
			Payload: []byte("h264 fu nal + encrypted payload"),
		},
	}
	if serverBased {
		p.SFU = SFUEncap{Type: SFUTypeMedia, Sequence: 42, Direction: DirFromSFU}
	}
	return p
}

func TestVideoRoundTripServerBased(t *testing.T) {
	p := videoPacket(true)
	wire, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	// Table 2: video RTP begins 24 bytes after the media encap start;
	// server-based traffic adds the 8-byte SFU encap.
	if wantOff := SFUEncapLen + 24; len(wire) != wantOff+p.RTP.MarshaledLen() {
		t.Errorf("wire length %d, want %d+%d", len(wire), wantOff, p.RTP.MarshaledLen())
	}
	got, err := ParsePacket(wire, ModeAuto)
	if err != nil {
		t.Fatalf("ParsePacket: %v", err)
	}
	if !got.ServerBased {
		t.Error("ServerBased = false")
	}
	if got.SFU.Sequence != 42 || !got.SFU.FromSFU() {
		t.Errorf("SFU = %+v", got.SFU)
	}
	if got.Media.Type != TypeVideo || got.Media.FrameSequence != 17 || got.Media.PacketsInFrame != 3 {
		t.Errorf("Media = %+v", got.Media)
	}
	if got.Media.Sequence != 100 || got.Media.Timestamp != 900000 {
		t.Errorf("Media seq/ts = %d/%d", got.Media.Sequence, got.Media.Timestamp)
	}
	if got.RTP.SSRC != 16778241 || got.RTP.PayloadType != PTVideoMain || !got.RTP.Marker {
		t.Errorf("RTP = %+v", got.RTP.Header)
	}
	if !bytes.Equal(got.RTP.Payload, p.RTP.Payload) {
		t.Errorf("payload = %q", got.RTP.Payload)
	}
}

func TestVideoRoundTripP2P(t *testing.T) {
	p := videoPacket(false)
	wire, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if len(wire) != 24+p.RTP.MarshaledLen() {
		t.Errorf("p2p wire length %d", len(wire))
	}
	got, err := ParsePacket(wire, ModeAuto)
	if err != nil {
		t.Fatalf("ParsePacket: %v", err)
	}
	if got.ServerBased {
		t.Error("ServerBased = true for P2P layout")
	}
	if got.Media.Type != TypeVideo {
		t.Errorf("Media.Type = %v", got.Media.Type)
	}
}

func TestHeaderLenTable2(t *testing.T) {
	// Offsets straight from Table 2 of the paper (P2P layout = offset
	// from end of UDP header).
	cases := map[MediaType]int{
		TypeVideo:       24,
		TypeAudio:       19,
		TypeScreenShare: 27,
		TypeRTCPSR:      16,
		TypeRTCPSRSDES:  16,
	}
	for mt, want := range cases {
		if got := mt.HeaderLen(); got != want {
			t.Errorf("HeaderLen(%s) = %d, want %d", mt, got, want)
		}
	}
	if got := MediaType(7).HeaderLen(); got != 0 {
		t.Errorf("HeaderLen(unknown) = %d, want 0", got)
	}
}

func TestAudioRoundTrip(t *testing.T) {
	for _, pt := range []uint8{PTAudioSpeak, PTAudioSilent, PTAudioMobile} {
		payload := []byte("opus-ish")
		if pt == PTAudioSilent {
			payload = make([]byte, SilentAudioPayloadLen)
		}
		p := Packet{
			ServerBased: true,
			SFU:         SFUEncap{Type: SFUTypeMedia, Direction: DirToSFU},
			Media:       MediaEncap{Type: TypeAudio, Sequence: 9, Timestamp: 16000},
			RTP: rtp.Packet{
				Header:  rtp.Header{PayloadType: pt, SequenceNumber: 1, SSRC: 3},
				Payload: payload,
			},
		}
		wire, err := p.Marshal()
		if err != nil {
			t.Fatalf("pt %d: Marshal: %v", pt, err)
		}
		got, err := ParsePacket(wire, ModeServer)
		if err != nil {
			t.Fatalf("pt %d: ParsePacket: %v", pt, err)
		}
		if got.Media.Type != TypeAudio || got.RTP.PayloadType != pt {
			t.Errorf("pt %d: got type %v pt %d", pt, got.Media.Type, got.RTP.PayloadType)
		}
		if pt == PTAudioSilent && got.MediaPayloadLen() != SilentAudioPayloadLen {
			t.Errorf("silent payload len = %d", got.MediaPayloadLen())
		}
	}
}

func TestRTCPRoundTrip(t *testing.T) {
	for _, mt := range []MediaType{TypeRTCPSR, TypeRTCPSRSDES} {
		p := Packet{
			ServerBased: true,
			SFU:         SFUEncap{Type: SFUTypeMedia, Direction: DirFromSFU},
			Media:       MediaEncap{Type: mt, Sequence: 2, Timestamp: 77},
			RTCP: rtp.CompoundPacket{SenderReports: []rtp.SenderReport{{
				SSRC: 9001, RTPTS: 123, PacketCount: 10, OctetCount: 100,
			}}},
		}
		wire, err := p.Marshal()
		if err != nil {
			t.Fatalf("%v: Marshal: %v", mt, err)
		}
		got, err := ParsePacket(wire, ModeAuto)
		if err != nil {
			t.Fatalf("%v: ParsePacket: %v", mt, err)
		}
		if !got.Media.Type.IsRTCP() {
			t.Errorf("%v: IsRTCP = false", mt)
		}
		if got.IsMedia() {
			t.Errorf("%v: IsMedia = true for RTCP", mt)
		}
		if len(got.RTCP.SenderReports) != 1 || got.RTCP.SenderReports[0].SSRC != 9001 {
			t.Errorf("%v: SRs = %+v", mt, got.RTCP.SenderReports)
		}
		wantSDES := mt == TypeRTCPSRSDES
		if (len(got.RTCP.SDES) == 1) != wantSDES {
			t.Errorf("%v: SDES = %+v", mt, got.RTCP.SDES)
		}
	}
}

func TestParsePacketRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x05},
		{99, 0, 0, 0, 0, 0, 0, 0},
		bytes.Repeat([]byte{0xff}, 40),
		func() []byte { // valid SFU encap but bogus media type
			b := make([]byte, 40)
			b[0] = SFUTypeMedia
			b[8] = 200
			return b
		}(),
	}
	for i, c := range cases {
		if _, err := ParsePacket(c, ModeAuto); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParsePacketModeMismatch(t *testing.T) {
	p := videoPacket(false)
	wire, _ := p.Marshal()
	if _, err := ParsePacket(wire, ModeServer); err == nil {
		t.Error("ModeServer accepted a P2P payload")
	}
	ps := videoPacket(true)
	wireS, _ := ps.Marshal()
	if _, err := ParsePacket(wireS, ModeP2P); err == nil {
		t.Error("ModeP2P accepted a server-based payload")
	}
}

func TestOpaqueBytesPreserved(t *testing.T) {
	p := videoPacket(false)
	wire, _ := p.Marshal()
	// Scribble into undecoded header positions (e.g. bytes 1..8, 15..20).
	for _, i := range []int{1, 2, 5, 8, 15, 18, 20} {
		wire[i] = byte(0xa0 + i)
	}
	got, err := ParsePacket(wire, ModeP2P)
	if err != nil {
		t.Fatalf("ParsePacket: %v", err)
	}
	out, err := got.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !bytes.Equal(out, wire) {
		t.Error("opaque header bytes not preserved across parse/marshal")
	}
}

func TestClassifySubstreamTable3(t *testing.T) {
	cases := []struct {
		mt   MediaType
		pt   uint8
		want Substream
	}{
		{TypeVideo, 98, SubVideoMain},
		{TypeVideo, 110, SubVideoFEC},
		{TypeAudio, 112, SubAudioSpeaking},
		{TypeAudio, 99, SubAudioSilent},
		{TypeAudio, 113, SubAudioMobile},
		{TypeAudio, 110, SubAudioFEC},
		{TypeScreenShare, 99, SubScreenShareMain},
		{TypeVideo, 99, SubUnknown},
		{TypeScreenShare, 98, SubUnknown},
		{TypeRTCPSR, 98, SubUnknown},
	}
	for _, c := range cases {
		if got := ClassifySubstream(c.mt, c.pt); got != c.want {
			t.Errorf("ClassifySubstream(%v,%d) = %v, want %v", c.mt, c.pt, got, c.want)
		}
	}
	if !SubVideoFEC.IsFEC() || !SubAudioFEC.IsFEC() || SubVideoMain.IsFEC() {
		t.Error("IsFEC misclassifies")
	}
}

func TestQuickVideoRoundTrip(t *testing.T) {
	f := func(seq, frameSeq uint16, ts uint32, nPkts uint8, ssrc uint32, payload []byte, server bool) bool {
		p := Packet{
			ServerBased: server,
			SFU:         SFUEncap{Type: SFUTypeMedia, Sequence: seq, Direction: DirToSFU},
			Media: MediaEncap{
				Type: TypeVideo, Sequence: seq, Timestamp: ts,
				FrameSequence: frameSeq, PacketsInFrame: nPkts,
			},
			RTP: rtp.Packet{
				Header:  rtp.Header{PayloadType: PTVideoMain, SequenceNumber: seq, Timestamp: ts, SSRC: ssrc},
				Payload: payload,
			},
		}
		wire, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := ParsePacket(wire, ModeAuto)
		if err != nil {
			return false
		}
		return got.ServerBased == server &&
			got.Media.FrameSequence == frameSeq &&
			got.Media.PacketsInFrame == nPkts &&
			got.RTP.SSRC == ssrc &&
			bytes.Equal(got.RTP.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestStreamKeyString(t *testing.T) {
	k := StreamKey{SSRC: 7, Type: TypeAudio}
	if got := k.String(); got != "audio/ssrc=7" {
		t.Errorf("String = %q", got)
	}
}

func BenchmarkParsePacketVideo(b *testing.B) {
	p := videoPacket(true)
	p.RTP.Payload = make([]byte, 1100)
	wire, _ := p.Marshal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParsePacket(wire, ModeServer); err != nil {
			b.Fatal(err)
		}
	}
}
