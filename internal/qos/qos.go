// Package qos models the client-side statistics that Zoom exposes
// through its SDK — the ground truth the paper used to validate its
// passive estimates (§5, Figure 10). The SDK reports once per second;
// the latency value refreshes only every five seconds, and the jitter
// value is heavily smoothed (the paper observed it never exceeding 2 ms
// even under congestion).
package qos

import "time"

// Stats is one per-second statistics snapshot as the client application
// would log it.
type Stats struct {
	// VideoFPS is the received video frame rate.
	VideoFPS float64
	// LatencyMS is the client's latency estimate.
	LatencyMS float64
	// JitterMS is the client's (smoothed) jitter estimate.
	JitterMS float64
}

// Entry is a recorded snapshot.
type Entry struct {
	Time time.Time
	Stats
}

// Recorder accumulates per-second entries, applying the SDK's reporting
// quirks: the latency field only updates every LatencyRefresh.
type Recorder struct {
	// Name identifies the client.
	Name string
	// LatencyRefresh is how often the reported latency re-samples
	// (Zoom: 5 s).
	LatencyRefresh time.Duration

	Entries []Entry

	lastLatencyAt time.Time
	heldLatency   float64
}

// NewRecorder builds a recorder with Zoom's 5-second latency refresh.
func NewRecorder(name string) *Recorder {
	return &Recorder{Name: name, LatencyRefresh: 5 * time.Second}
}

// Record appends one snapshot, applying the latency hold.
func (r *Recorder) Record(at time.Time, s Stats) {
	if r.lastLatencyAt.IsZero() || at.Sub(r.lastLatencyAt) >= r.LatencyRefresh {
		r.heldLatency = s.LatencyMS
		r.lastLatencyAt = at
	}
	s.LatencyMS = r.heldLatency
	r.Entries = append(r.Entries, Entry{Time: at, Stats: s})
}

// Between returns entries within [from, to).
func (r *Recorder) Between(from, to time.Time) []Entry {
	var out []Entry
	for _, e := range r.Entries {
		if !e.Time.Before(from) && e.Time.Before(to) {
			out = append(out, e)
		}
	}
	return out
}
