package qos

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleClients() map[string][]Entry {
	t0 := time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)
	return map[string][]Entry{
		"alice": {
			{Time: t0, Stats: Stats{VideoFPS: 24.5, LatencyMS: 120, JitterMS: 1.2}},
			{Time: t0.Add(time.Second), Stats: Stats{VideoFPS: 25, LatencyMS: 120, JitterMS: 1.1}},
		},
		"bob": {
			{Time: t0.Add(500 * time.Millisecond), Stats: Stats{VideoFPS: 30, LatencyMS: 40, JitterMS: 0.4}},
		},
	}
}

func TestLogRoundTrip(t *testing.T) {
	want := sampleClients()
	var buf bytes.Buffer
	if err := WriteLog(&buf, want); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "#zoomlens-qos v1\nclient,time,") {
		t.Fatalf("missing version/header:\n%s", buf.String())
	}
	got, err := ParseLog(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestWriteLogRejects(t *testing.T) {
	for _, bad := range []map[string][]Entry{
		{"a,b": nil},
		{"": nil},
		{"a\nb": nil},
	} {
		if err := WriteLog(&bytes.Buffer{}, bad); err == nil {
			t.Errorf("WriteLog(%v) accepted a bad client name", bad)
		}
	}
	nan := map[string][]Entry{"a": {{Stats: Stats{VideoFPS: 0 / zero()}}}}
	if err := WriteLog(&bytes.Buffer{}, nan); err == nil {
		t.Error("WriteLog accepted a NaN stat")
	}
}

// zero defeats the compile-time division-by-zero check.
func zero() float64 { return 0 }

func TestParseLogRejects(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad version": "#zoomlens-qos v9\nclient,time,video_fps,latency_ms,jitter_ms\n",
		"no header":   "#zoomlens-qos v1\n",
		"bad header":  "#zoomlens-qos v1\nclient,when,fps\n",
		"short row":   "#zoomlens-qos v1\nclient,time,video_fps,latency_ms,jitter_ms\na,2022-05-05T09:00:00Z,1,2\n",
		"bad time":    "#zoomlens-qos v1\nclient,time,video_fps,latency_ms,jitter_ms\na,yesterday,1,2,3\n",
		"bad float":   "#zoomlens-qos v1\nclient,time,video_fps,latency_ms,jitter_ms\na,2022-05-05T09:00:00Z,x,2,3\n",
		"nan float":   "#zoomlens-qos v1\nclient,time,video_fps,latency_ms,jitter_ms\na,2022-05-05T09:00:00Z,NaN,2,3\n",
		"empty name":  "#zoomlens-qos v1\nclient,time,video_fps,latency_ms,jitter_ms\n,2022-05-05T09:00:00Z,1,2,3\n",
	}
	for name, in := range cases {
		if _, err := ParseLog([]byte(in)); err == nil {
			t.Errorf("%s: ParseLog accepted malformed input", name)
		}
	}
}

func TestParseLogSkipsBlankLines(t *testing.T) {
	in := "#zoomlens-qos v1\nclient,time,video_fps,latency_ms,jitter_ms\n\na,2022-05-05T09:00:00Z,1,2,3\n\n"
	got, err := ParseLog([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got["a"]) != 1 {
		t.Fatalf("got %+v", got)
	}
}

// FuzzQoSLog fuzzes the ground-truth log parser: it must never panic,
// and anything it accepts must survive a write/parse round trip
// unchanged (the serializer and parser agree on the grammar).
func FuzzQoSLog(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteLog(&seed, sampleClients()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("#zoomlens-qos v1\nclient,time,video_fps,latency_ms,jitter_ms\n"))
	f.Add([]byte("#zoomlens-qos v1\nclient,time,video_fps,latency_ms,jitter_ms\nx,2022-05-05T09:00:00.25+01:00,1e-3,2,3\n"))
	f.Add([]byte("not a log"))
	f.Fuzz(func(t *testing.T, data []byte) {
		logs, err := ParseLog(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteLog(&buf, logs); err != nil {
			t.Fatalf("parsed log failed to re-serialize: %v", err)
		}
		again, err := ParseLog(buf.Bytes())
		if err != nil {
			t.Fatalf("re-serialized log failed to parse: %v\n%s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(logs, again) {
			t.Fatalf("round trip changed the log:\n got %+v\nwant %+v", again, logs)
		}
	})
}
