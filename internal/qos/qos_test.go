package qos

import (
	"testing"
	"time"
)

var t0 = time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)

func TestLatencyHeldAcrossRefreshWindow(t *testing.T) {
	r := NewRecorder("c1")
	for i := 0; i < 12; i++ {
		r.Record(t0.Add(time.Duration(i)*time.Second), Stats{LatencyMS: float64(10 + i), VideoFPS: 28})
	}
	if len(r.Entries) != 12 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	// Seconds 0-4 hold the value sampled at 0; 5-9 the value at 5; etc.
	for i, e := range r.Entries {
		want := float64(10 + (i/5)*5)
		if e.LatencyMS != want {
			t.Errorf("entry %d latency = %v, want %v", i, e.LatencyMS, want)
		}
	}
	// FPS passes through unsmoothed.
	if r.Entries[3].VideoFPS != 28 {
		t.Errorf("fps = %v", r.Entries[3].VideoFPS)
	}
}

func TestBetween(t *testing.T) {
	r := NewRecorder("c1")
	for i := 0; i < 10; i++ {
		r.Record(t0.Add(time.Duration(i)*time.Second), Stats{VideoFPS: float64(i)})
	}
	got := r.Between(t0.Add(3*time.Second), t0.Add(6*time.Second))
	if len(got) != 3 || got[0].VideoFPS != 3 || got[2].VideoFPS != 5 {
		t.Errorf("between = %+v", got)
	}
}
