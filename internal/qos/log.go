package qos

// Ground-truth log format. A training run needs the client-side QoS
// series on disk next to the capture: zoomsim writes one with -qos-out,
// zoomfeatures joins it against streaming feature rows to label them.
// The format is a tiny versioned CSV, one row per SDK snapshot:
//
//	#zoomlens-qos v1
//	client,time,video_fps,latency_ms,jitter_ms
//	alice,2022-05-05T09:00:01Z,24.5,120,1.2
//
// ParseLog is the untrusted-input half (fuzzed by FuzzQoSLog): it never
// panics, rejects anything that does not round-trip, and returns the
// first error with its line number.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// LogVersion is the current ground-truth log format version.
const LogVersion = 1

const (
	logVersionLine = "#zoomlens-qos v1"
	logHeader      = "client,time,video_fps,latency_ms,jitter_ms"
)

// WriteLog writes the per-client entry series as a versioned QoS log.
// Clients are emitted in name order so output is deterministic; entries
// keep their slice order. Client names must be non-empty and free of
// commas, newlines, and carriage returns (they are CSV cells).
func WriteLog(w io.Writer, clients map[string][]Entry) error {
	names := make([]string, 0, len(clients))
	for name := range clients {
		if name == "" || strings.ContainsAny(name, ",\n\r") {
			return fmt.Errorf("qos: client name %q is not a valid log cell", name)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, logVersionLine)
	fmt.Fprintln(bw, logHeader)
	for _, name := range names {
		for _, e := range clients[name] {
			if !finite(e.VideoFPS) || !finite(e.LatencyMS) || !finite(e.JitterMS) {
				return fmt.Errorf("qos: client %q has a non-finite stat at %s", name, e.Time.Format(time.RFC3339Nano))
			}
			fmt.Fprintf(bw, "%s,%s,%s,%s,%s\n", name,
				e.Time.UTC().Format(time.RFC3339Nano),
				fmtF(e.VideoFPS), fmtF(e.LatencyMS), fmtF(e.JitterMS))
		}
	}
	return bw.Flush()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// ParseLog decodes a QoS log produced by WriteLog (or hand-written to
// the same format). It never panics on malformed input; the first
// malformed line fails the whole parse — ground truth with silently
// dropped rows would mislabel every window it covered.
func ParseLog(data []byte) (map[string][]Entry, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("qos: empty log")
	}
	if got := sc.Text(); got != logVersionLine {
		return nil, fmt.Errorf("qos: bad version line %.40q (want %q)", got, logVersionLine)
	}
	if !sc.Scan() || sc.Text() != logHeader {
		return nil, fmt.Errorf("qos: missing header %q", logHeader)
	}
	out := make(map[string][]Entry)
	lineNo := 2
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("qos: line %d: %d fields (want 5)", lineNo, len(fields))
		}
		name := fields[0]
		if name == "" || strings.ContainsAny(name, "\r") {
			return nil, fmt.Errorf("qos: line %d: bad client name", lineNo)
		}
		at, err := time.Parse(time.RFC3339Nano, fields[1])
		if err != nil {
			return nil, fmt.Errorf("qos: line %d: %v", lineNo, err)
		}
		var e Entry
		e.Time = at.UTC()
		// A zone offset can push the UTC normalization outside the
		// four-digit years RFC3339 can express, which would break the
		// write/parse round trip.
		if y := e.Time.Year(); y < 0 || y > 9999 {
			return nil, fmt.Errorf("qos: line %d: timestamp year %d out of range", lineNo, y)
		}
		for i, dst := range []*float64{&e.VideoFPS, &e.LatencyMS, &e.JitterMS} {
			v, err := strconv.ParseFloat(fields[2+i], 64)
			if err != nil || !finite(v) {
				return nil, fmt.Errorf("qos: line %d: bad stat %q", lineNo, fields[2+i])
			}
			*dst = v
		}
		out[name] = append(out[name], e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("qos: %v", err)
	}
	return out, nil
}
