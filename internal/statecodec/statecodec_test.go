package statecodec

import (
	"net/netip"
	"strings"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U8(3)
	w.Bool(true)
	w.Bool(false)
	w.U16(65535)
	w.U32(0xdeadbeef)
	w.U64(1 << 62)
	w.I64(-42)
	w.Int(-7)
	w.F64(3.14159)
	w.Duration(5 * time.Second)
	w.Time(time.Unix(1700000000, 123456789))
	w.Time(time.Time{})
	w.PutBytes([]byte{1, 2, 3})
	w.String("hello")
	w.Addr(netip.MustParseAddr("10.1.2.3"))
	w.Addr(netip.MustParseAddr("fd00::1"))
	w.Addr(netip.Addr{})
	w.AddrPort(netip.MustParseAddrPort("192.168.0.1:8801"))

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 3 {
		t.Fatalf("u8 = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool round trip")
	}
	if got := r.U16(); got != 65535 {
		t.Fatalf("u16 = %d", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Fatalf("u32 = %x", got)
	}
	if got := r.U64(); got != 1<<62 {
		t.Fatalf("u64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("i64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Fatalf("int = %d", got)
	}
	if got := r.F64(); got != 3.14159 {
		t.Fatalf("f64 = %v", got)
	}
	if got := r.Duration(); got != 5*time.Second {
		t.Fatalf("duration = %v", got)
	}
	want := time.Unix(1700000000, 123456789)
	if got := r.Time(); !got.Equal(want) {
		t.Fatalf("time = %v", got)
	}
	if got := r.Time(); !got.IsZero() {
		t.Fatalf("zero time = %v", got)
	}
	if got := r.GetBytes(); len(got) != 3 || got[2] != 3 {
		t.Fatalf("bytes = %v", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("string = %q", got)
	}
	if got := r.Addr(); got != netip.MustParseAddr("10.1.2.3") {
		t.Fatalf("addr4 = %v", got)
	}
	if got := r.Addr(); got != netip.MustParseAddr("fd00::1") {
		t.Fatalf("addr6 = %v", got)
	}
	if got := r.Addr(); got.IsValid() {
		t.Fatalf("invalid addr = %v", got)
	}
	if got := r.AddrPort(); got != netip.MustParseAddrPort("192.168.0.1:8801") {
		t.Fatalf("addrport = %v", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

// TestTruncation decodes every proper prefix of a valid encoding; every
// one must end with a sticky error, never a panic.
func TestTruncation(t *testing.T) {
	var w Writer
	w.U8(1)
	w.Time(time.Unix(100, 5))
	w.String("abcdef")
	w.F64(2.5)
	w.AddrPort(netip.MustParseAddrPort("10.0.0.1:443"))
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.U8()
		r.Time()
		_ = r.String()
		r.F64()
		r.AddrPort()
		if r.Err() == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

// TestHostileCounts confirms that a huge declared count cannot trigger a
// matching allocation.
func TestHostileCounts(t *testing.T) {
	var w Writer
	w.Int(1 << 40) // claims a petabyte of elements
	r := NewReader(w.Bytes())
	if n := r.Count(1); n != 0 || r.Err() == nil {
		t.Fatalf("hostile count accepted: n=%d err=%v", n, r.Err())
	}
	if b := NewReader(w.Bytes()).GetBytes(); b != nil {
		t.Fatalf("hostile byte length allocated %d bytes", len(b))
	}
}

func TestVersionGate(t *testing.T) {
	var w Writer
	w.U8(2)
	r := NewReader(w.Bytes())
	r.Version("flow", 1)
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "flow state version 2") {
		t.Fatalf("version gate: %v", err)
	}
	r2 := NewReader(w.Bytes())
	r2.Version("flow", 2)
	if err := r2.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	enc := func() []byte {
		var w Writer
		w.Time(time.Unix(42, 7))
		w.F64(1.25)
		w.U64(99)
		return append([]byte(nil), w.Bytes()...)
	}
	a, b := enc(), enc()
	if string(a) != string(b) {
		t.Fatal("identical state encoded to different bytes")
	}
}
