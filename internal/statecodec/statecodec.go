// Package statecodec is the compact binary codec behind the analyzer's
// checkpoint/restore boundary: every stateful layer encodes its pure
// state through a Writer and rebuilds it through a Reader. The format is
// length-prefixed and reflection-free — plain append/slice operations on
// the hot path — so a 10k-stream checkpoint encodes in milliseconds.
//
// Conventions shared by every layer:
//
//   - Each layer's State() starts with a one-byte format version; its
//     Restore() rejects versions it does not know. Bumping a layer's
//     version invalidates only checkpoints containing that layer.
//   - Unsigned integers use uvarint; signed use zigzag varint; floats
//     are fixed 8-byte IEEE bit patterns (exact round trip, bit for
//     bit — the byte-identical-report invariant depends on it).
//   - Collections are written as a count followed by the elements, in a
//     deterministic (sorted or insertion) order chosen by the layer, so
//     identical state always produces identical checkpoint bytes.
//   - The Reader is hostile-input safe: it never panics, never
//     over-allocates (counts are validated against the bytes actually
//     remaining), and goes sticky on the first error so decode code can
//     run straight-line and check Err() once at the end.
package statecodec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net/netip"
	"time"
)

// ErrCorrupt is wrapped by every Reader failure: truncated input,
// over-long counts, or malformed values.
var ErrCorrupt = errors.New("statecodec: corrupt or truncated state")

// Writer accumulates encoded state in memory. The zero value is ready to
// use.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded state. The slice aliases the writer's
// buffer; it is valid until the next append.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes encoded so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset discards the encoded state, keeping the buffer for reuse, so
// one Writer can encode a stream of records without reallocating.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Grow reserves capacity for at least n more bytes, so encoders with a
// size estimate avoid repeated buffer doublings (a full checkpoint is
// megabytes; growing from zero copies the prefix a couple dozen times).
func (w *Writer) Grow(n int) {
	if n <= cap(w.buf)-len(w.buf) {
		return
	}
	nb := make([]byte, len(w.buf), len(w.buf)+n)
	copy(nb, w.buf)
	w.buf = nb
}

// U8 appends one byte (layer format versions, enums).
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// U16 appends an unsigned 16-bit value (RTP sequence numbers, ports).
func (w *Writer) U16(v uint16) { w.U64(uint64(v)) }

// U32 appends an unsigned 32-bit value (SSRCs, RTP timestamps).
func (w *Writer) U32(v uint32) { w.U64(uint64(v)) }

// U64 appends an unsigned value as uvarint.
func (w *Writer) U64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// I64 appends a signed value as zigzag varint.
func (w *Writer) I64(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Int appends a machine int (map sizes, caps).
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends a float as its fixed 8-byte IEEE 754 bit pattern.
func (w *Writer) F64(v float64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// Duration appends a time.Duration.
func (w *Writer) Duration(d time.Duration) { w.I64(int64(d)) }

// Time appends a wall-clock instant as (second, nanosecond) with an
// explicit zero flag, so the time.Time zero value round-trips as IsZero.
// Monotonic readings are dropped — capture timestamps never carry them.
func (w *Writer) Time(t time.Time) {
	if t.IsZero() {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.I64(t.Unix())
	w.I64(int64(t.Nanosecond()))
}

// Bytes appends a length-prefixed byte slice.
func (w *Writer) PutBytes(b []byte) {
	w.Int(len(b))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Int(len(s))
	w.buf = append(w.buf, s...)
}

// Addr appends a netip.Addr (length byte + raw bytes; 0 for the invalid
// address).
func (w *Writer) Addr(a netip.Addr) {
	if !a.IsValid() {
		w.U8(0)
		return
	}
	b := a.AsSlice()
	w.U8(uint8(len(b)))
	w.buf = append(w.buf, b...)
}

// AddrPort appends a netip.AddrPort.
func (w *Writer) AddrPort(ap netip.AddrPort) {
	w.Addr(ap.Addr())
	w.U16(ap.Port())
}

// Reader decodes state encoded by Writer. All methods return the zero
// value after the first error; call Err once at the end of a layer's
// Restore.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a reader over b. The reader never mutates b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many bytes are left undecoded.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, r.off)
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bool reads a boolean. Any byte other than 0 or 1 is corruption.
func (r *Reader) Bool() bool {
	v := r.U8()
	if v > 1 {
		r.fail("bool")
		return false
	}
	return v == 1
}

// U64 reads a uvarint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("uvarint")
		return 0
	}
	r.off += n
	return v
}

// U32 reads an unsigned 32-bit value, rejecting overflow.
func (r *Reader) U32() uint32 {
	v := r.U64()
	if v > math.MaxUint32 {
		r.fail("u32 range")
		return 0
	}
	return uint32(v)
}

// U16 reads an unsigned 16-bit value, rejecting overflow.
func (r *Reader) U16() uint16 {
	v := r.U64()
	if v > math.MaxUint16 {
		r.fail("u16 range")
		return 0
	}
	return uint16(v)
}

// I64 reads a zigzag varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail("varint")
		return 0
	}
	r.off += n
	return v
}

// Int reads a machine int.
func (r *Reader) Int() int {
	v := r.I64()
	if int64(int(v)) != v {
		r.fail("int range")
		return 0
	}
	return int(v)
}

// F64 reads a fixed 8-byte float.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("f64")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// Duration reads a time.Duration.
func (r *Reader) Duration() time.Duration { return time.Duration(r.I64()) }

// Time reads an instant written by Writer.Time.
func (r *Reader) Time() time.Time {
	if !r.Bool() || r.err != nil {
		return time.Time{}
	}
	sec := r.I64()
	nsec := r.I64()
	if nsec < 0 || nsec > 999_999_999 {
		r.fail("time nsec")
		return time.Time{}
	}
	return time.Unix(sec, nsec)
}

// Count reads a collection length and validates it against both the
// caller's ceiling and the bytes remaining (each element costs at least
// minElemBytes, so a hostile count cannot trigger a huge allocation).
func (r *Reader) Count(minElemBytes int) int {
	n := r.Int()
	if r.err != nil {
		return 0
	}
	if n < 0 {
		r.fail("negative count")
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n > r.Remaining()/minElemBytes {
		r.fail("count exceeds input")
		return 0
	}
	return n
}

// GetBytes reads a length-prefixed byte slice (copied out of the input).
func (r *Reader) GetBytes() []byte {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.b[r.off:r.off+n])
	r.off += n
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Count(1)
	if r.err != nil || n == 0 {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// Addr reads a netip.Addr.
func (r *Reader) Addr() netip.Addr {
	n := int(r.U8())
	if r.err != nil || n == 0 {
		return netip.Addr{}
	}
	if n != 4 && n != 16 {
		r.fail("addr length")
		return netip.Addr{}
	}
	if r.off+n > len(r.b) {
		r.fail("addr bytes")
		return netip.Addr{}
	}
	a, ok := netip.AddrFromSlice(r.b[r.off : r.off+n])
	if !ok {
		r.fail("addr value")
		return netip.Addr{}
	}
	r.off += n
	return a
}

// AddrPort reads a netip.AddrPort.
func (r *Reader) AddrPort() netip.AddrPort {
	a := r.Addr()
	p := r.U16()
	return netip.AddrPortFrom(a, p)
}

// Version reads a layer format version byte and errors unless it equals
// want, giving every layer the same one-line version gate.
func (r *Reader) Version(layer string, want uint8) {
	got := r.U8()
	if r.err == nil && got != want {
		r.err = fmt.Errorf("%w: %s state version %d (supported: %d)", ErrCorrupt, layer, got, want)
	}
}

// Failf marks the reader corrupt with a formatted reason. Layers use it
// when a decoded value is in range for the codec but invalid for the
// layer (a non-positive clock rate, a dangling index).
func (r *Reader) Failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}
