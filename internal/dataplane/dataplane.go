// Package dataplane is a feasibility study of the paper's §8 proposal to
// run the performance analysis *inside* a programmable switch: "we can
// already identify and parse Zoom headers in the data plane; the
// computations of our performance metrics can be implemented in a
// streaming fashion … The space constraints of high-speed programmable
// switches may require approximate data structures limiting overall
// accuracy."
//
// Monitor computes per-stream frame counts, byte/packet counters, and a
// frame-level jitter estimate under switch-like constraints:
//
//   - a fixed-size direct-indexed slot table (register arrays): streams
//     hash to slots, and colliding streams overwrite each other exactly
//     as a P4 register would;
//   - integer-only arithmetic: jitter is a Q8 fixed-point EWMA updated
//     with shifts (j += (|d|−j) >> 4), timestamps are microseconds in
//     uint32 (wrap-tolerant);
//   - one pass, one touch per packet, O(1) state per touch.
//
// The ablation benchmark (BenchmarkAblationDataplaneAccuracy) measures
// how accuracy degrades with table size relative to the exact software
// pipeline.
package dataplane

import (
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/zoom"
)

// Config sizes the monitor.
type Config struct {
	// Slots is the size of the stream table (a power of two).
	Slots int
}

// Slot is the per-stream register state, sized like a wide switch
// register entry (< 64 bytes).
type Slot struct {
	// Fingerprint identifies the occupying stream (0 = empty).
	Fingerprint uint64
	SSRC        uint32
	MediaType   uint8

	// Counters.
	Packets uint32
	Bytes   uint32
	Frames  uint32

	// lastTS is the last RTP timestamp seen (frame boundary detection).
	lastTS uint32
	// lastArrivalUS is the arrival clock at the last frame boundary, in
	// µs (wraps ~71 min, like a real switch timestamp register).
	lastArrivalUS uint32
	// JitterQ8 is the RFC 3550 jitter in Q8 fixed-point microseconds.
	JitterQ8 uint32

	started bool
}

// JitterMS converts the fixed-point jitter to milliseconds.
func (s *Slot) JitterMS() float64 { return float64(s.JitterQ8) / 256 / 1000 }

// Monitor is the switch-like metric engine.
type Monitor struct {
	slots []Slot
	mask  uint64

	// Collisions counts slot takeovers — the accuracy loss mechanism.
	Collisions uint64
	// Processed counts media packets touched.
	Processed uint64
}

// NewMonitor builds a monitor with the given slot count (rounded up to
// a power of two, minimum 16).
func NewMonitor(cfg Config) *Monitor {
	n := 16
	for n < cfg.Slots {
		n <<= 1
	}
	return &Monitor{slots: make([]Slot, n), mask: uint64(n - 1)}
}

// SlotCount returns the table size.
func (m *Monitor) SlotCount() int { return len(m.slots) }

// Process touches one parsed media packet. Only video is tracked for
// jitter (the 90 kHz clock is known); other media still count packets
// and bytes.
func (m *Monitor) Process(at time.Time, ft layers.FiveTuple, zp *zoom.Packet) {
	if !zp.IsMedia() {
		return
	}
	m.Processed++
	fp := fingerprint(ft, zp.RTP.SSRC, uint8(zp.Media.Type))
	idx := fp & m.mask
	s := &m.slots[idx]
	if s.Fingerprint != fp {
		if s.Fingerprint != 0 {
			m.Collisions++
		}
		*s = Slot{Fingerprint: fp, SSRC: zp.RTP.SSRC, MediaType: uint8(zp.Media.Type)}
	}
	s.Packets++
	s.Bytes += uint32(len(zp.RTP.Payload))

	if zoom.ClassifySubstream(zp.Media.Type, zp.RTP.PayloadType).IsFEC() {
		return // FEC shares timestamps; do not disturb frame detection
	}
	ts := zp.RTP.Timestamp
	nowUS := uint32(at.UnixNano() / 1000)
	if !s.started {
		s.started = true
		s.lastTS = ts
		s.lastArrivalUS = nowUS
		s.Frames = 1
		return
	}
	if ts == s.lastTS {
		return // same frame
	}
	s.Frames++
	if zp.Media.Type == zoom.TypeVideo {
		// D = (R_j − R_i) − (S_j − S_i), all integer µs. The RTP delta
		// converts at 90 kHz: ticks × 100 / 9 µs, done in integer math.
		dR := nowUS - s.lastArrivalUS // wraps correctly in uint32
		dSticks := ts - s.lastTS      // serial arithmetic
		dS := uint32(uint64(dSticks) * 100 / 9)
		var d uint32
		if dR >= dS {
			d = dR - dS
		} else {
			d = dS - dR
		}
		// Clamp implausible gaps (idle periods, timestamp jumps) the way
		// a P4 program would bound its register update.
		const clampUS = 1 << 20 // ~1 s
		if d < clampUS {
			dq := d << 8
			if dq >= s.JitterQ8 {
				s.JitterQ8 += (dq - s.JitterQ8) >> 4
			} else {
				s.JitterQ8 -= (s.JitterQ8 - dq) >> 4
			}
		}
	}
	s.lastTS = ts
	s.lastArrivalUS = nowUS
}

// Snapshot returns the occupied slots.
func (m *Monitor) Snapshot() []Slot {
	var out []Slot
	for i := range m.slots {
		if m.slots[i].Fingerprint != 0 {
			out = append(out, m.slots[i])
		}
	}
	return out
}

// Lookup finds the slot currently owned by a stream, if any.
func (m *Monitor) Lookup(ft layers.FiveTuple, ssrc uint32, mt zoom.MediaType) (Slot, bool) {
	fp := fingerprint(ft, ssrc, uint8(mt))
	s := m.slots[fp&m.mask]
	if s.Fingerprint != fp {
		return Slot{}, false
	}
	return s, true
}

// fingerprint hashes a stream identity to 64 bits (FNV-1a over the
// 5-tuple, SSRC, and media type). A real switch would use its CRC
// units; the collision behaviour is what matters here.
func fingerprint(ft layers.FiveTuple, ssrc uint32, mt uint8) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	src, dst := ft.Src.As16(), ft.Dst.As16()
	for _, b := range src {
		mix(b)
	}
	for _, b := range dst {
		mix(b)
	}
	mix(byte(ft.SrcPort >> 8))
	mix(byte(ft.SrcPort))
	mix(byte(ft.DstPort >> 8))
	mix(byte(ft.DstPort))
	mix(ft.Proto)
	mix(byte(ssrc >> 24))
	mix(byte(ssrc >> 16))
	mix(byte(ssrc >> 8))
	mix(byte(ssrc))
	mix(mt)
	if h == 0 {
		h = 1
	}
	return h
}
