package dataplane

import (
	"net/netip"
	"testing"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

var (
	t0  = time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)
	ftA = layers.FiveTuple{Src: netip.MustParseAddr("10.8.1.2"), Dst: netip.MustParseAddr("52.81.3.4"), SrcPort: 50000, DstPort: 8801, Proto: layers.ProtoUDP}
)

func videoPkt(ssrc uint32, seq uint16, ts uint32, marker bool) *zoom.Packet {
	return &zoom.Packet{
		ServerBased: true,
		Media:       zoom.MediaEncap{Type: zoom.TypeVideo, Timestamp: ts, PacketsInFrame: 1},
		RTP: rtp.Packet{
			Header:  rtp.Header{PayloadType: zoom.PTVideoMain, SequenceNumber: seq, Timestamp: ts, SSRC: ssrc, Marker: marker},
			Payload: make([]byte, 900),
		},
	}
}

func TestFrameCountingAndCounters(t *testing.T) {
	m := NewMonitor(Config{Slots: 64})
	at := t0
	ts := uint32(0)
	seq := uint16(0)
	for f := 0; f < 30; f++ {
		for p := 0; p < 2; p++ { // two packets per frame, same TS
			m.Process(at, ftA, videoPkt(7, seq, ts, p == 1))
			seq++
			at = at.Add(250 * time.Microsecond)
		}
		ts += 3000
		at = at.Add(33 * time.Millisecond)
	}
	s, ok := m.Lookup(ftA, 7, zoom.TypeVideo)
	if !ok {
		t.Fatal("stream not found")
	}
	if s.Frames != 30 {
		t.Errorf("frames = %d, want 30", s.Frames)
	}
	if s.Packets != 60 {
		t.Errorf("packets = %d, want 60", s.Packets)
	}
	if s.Bytes != 60*900 {
		t.Errorf("bytes = %d", s.Bytes)
	}
	if m.Collisions != 0 {
		t.Errorf("collisions = %d", m.Collisions)
	}
}

func TestJitterIntegerEWMAOnSmoothStream(t *testing.T) {
	m := NewMonitor(Config{Slots: 64})
	at := t0
	ts := uint32(0)
	for f := 0; f < 300; f++ {
		m.Process(at, ftA, videoPkt(7, uint16(f), ts, true))
		ts += 2970 // 33 ms at 90 kHz
		at = at.Add(33 * time.Millisecond)
	}
	s, _ := m.Lookup(ftA, 7, zoom.TypeVideo)
	if j := s.JitterMS(); j > 0.2 {
		t.Errorf("jitter = %v ms on a perfectly smooth stream", j)
	}
}

func TestJitterRespondsToVariance(t *testing.T) {
	m := NewMonitor(Config{Slots: 64})
	at := t0
	ts := uint32(0)
	for f := 0; f < 300; f++ {
		gap := 33 * time.Millisecond
		if f%2 == 0 {
			gap += 10 * time.Millisecond
		}
		at = at.Add(gap)
		m.Process(at, ftA, videoPkt(7, uint16(f), ts, true))
		ts += 2970
	}
	s, _ := m.Lookup(ftA, 7, zoom.TypeVideo)
	j := s.JitterMS()
	if j < 3 || j > 13 {
		t.Errorf("jitter = %v ms, want near the ±10 ms oscillation scale", j)
	}
}

func TestCollisionEviction(t *testing.T) {
	m := NewMonitor(Config{Slots: 16})
	// Flood with many distinct streams: with 16 slots and 200 streams,
	// evictions must occur and be counted.
	for i := 0; i < 200; i++ {
		ft := ftA
		ft.SrcPort = uint16(40000 + i)
		m.Process(t0, ft, videoPkt(uint32(100+i), 0, 0, true))
	}
	if m.Collisions == 0 {
		t.Error("no collisions despite 200 streams in 16 slots")
	}
	if got := len(m.Snapshot()); got > 16 {
		t.Errorf("snapshot = %d slots, table is 16", got)
	}
}

func TestFECDoesNotDisturbFrames(t *testing.T) {
	m := NewMonitor(Config{Slots: 64})
	at := t0
	// Frame 1 main, FEC with same TS, frame 2 main.
	m.Process(at, ftA, videoPkt(7, 0, 0, true))
	fec := videoPkt(7, 100, 0, false)
	fec.RTP.PayloadType = zoom.PTFEC
	m.Process(at.Add(time.Millisecond), ftA, fec)
	m.Process(at.Add(33*time.Millisecond), ftA, videoPkt(7, 1, 3000, true))
	s, _ := m.Lookup(ftA, 7, zoom.TypeVideo)
	if s.Frames != 2 {
		t.Errorf("frames = %d, want 2 (FEC must not add frames)", s.Frames)
	}
	if s.Packets != 3 {
		t.Errorf("packets = %d, want 3 (FEC still counted)", s.Packets)
	}
}

func TestRTCPIgnored(t *testing.T) {
	m := NewMonitor(Config{Slots: 16})
	zp := &zoom.Packet{Media: zoom.MediaEncap{Type: zoom.TypeRTCPSR}}
	m.Process(t0, ftA, zp)
	if m.Processed != 0 || len(m.Snapshot()) != 0 {
		t.Error("RTCP packet touched the table")
	}
}

func TestSlotCountPowerOfTwo(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, 16}, {16, 16}, {17, 32}, {1000, 1024}} {
		if got := NewMonitor(Config{Slots: c.in}).SlotCount(); got != c.want {
			t.Errorf("SlotCount(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func BenchmarkProcess(b *testing.B) {
	m := NewMonitor(Config{Slots: 4096})
	pkt := videoPkt(7, 0, 0, true)
	at := t0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.RTP.SequenceNumber = uint16(i)
		pkt.RTP.Timestamp = uint32(i) * 3000
		at = at.Add(33 * time.Millisecond)
		m.Process(at, ftA, pkt)
	}
}
