// Package faultpcap injects controlled faults into packet captures for
// robustness testing: truncated files, flipped payload bits, timestamp
// discontinuities, and duplicated records — the corruption modes a
// production tap actually meets (crashed tcpdump, failing NICs or disks,
// NTP steps, switch-level mirroring duplicating frames).
//
// Faults are deterministic: the same input, fault, and seed always yield
// the same corrupted capture, so differential tests can feed an
// identical damaged stream to several analyzer configurations and demand
// identical results.
package faultpcap

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"time"

	"zoomlens/internal/pcap"
)

// Fault selects one corruption mode.
type Fault int

const (
	// None passes the capture through unchanged (the control arm).
	None Fault = iota
	// Truncate cuts the capture mid-record, as a crashed or interrupted
	// writer would.
	Truncate
	// BitFlip flips one random bit in the payload of randomly chosen
	// records.
	BitFlip
	// TimestampJump introduces large forward and backward timestamp
	// steps, as an NTP correction on the capture host would.
	TimestampJump
	// Duplicate re-delivers randomly chosen records immediately after
	// the original, as mirror ports under load do.
	Duplicate
)

// String names the fault for test labels.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Truncate:
		return "truncate"
	case BitFlip:
		return "bitflip"
	case TimestampJump:
		return "tsjump"
	case Duplicate:
		return "duplicate"
	}
	return fmt.Sprintf("Fault(%d)", int(f))
}

// Faults lists every corruption mode (excluding the None control), for
// tests that iterate the full matrix.
func Faults() []Fault { return []Fault{Truncate, BitFlip, TimestampJump, Duplicate} }

// Options parameterizes the injection.
type Options struct {
	Fault Fault
	// Seed drives every random choice; equal seeds yield equal output.
	Seed int64
	// Rate is the per-record fault probability for BitFlip, Duplicate,
	// and TimestampJump (default 1/16).
	Rate float64
	// Jump is the timestamp step magnitude for TimestampJump (default
	// one minute).
	Jump time.Duration
}

func (o Options) withDefaults() Options {
	if o.Rate <= 0 {
		o.Rate = 1.0 / 16
	}
	if o.Jump <= 0 {
		o.Jump = time.Minute
	}
	return o
}

// Reader wraps a pcap record source and yields the same records with the
// configured record-level fault applied (BitFlip, TimestampJump,
// Duplicate; Truncate is a byte-level fault — use Apply).
type Reader struct {
	next    func() (pcap.Record, error)
	opt     Options
	rng     *rand.Rand
	pending []pcap.Record
	shift   time.Duration
}

// NewReader wraps next (for example (*pcap.Reader).Next) with fault
// injection.
func NewReader(next func() (pcap.Record, error), opt Options) *Reader {
	opt = opt.withDefaults()
	return &Reader{next: next, opt: opt, rng: rand.New(rand.NewSource(opt.Seed))}
}

// Next returns the next (possibly corrupted) record.
func (r *Reader) Next() (pcap.Record, error) {
	if len(r.pending) > 0 {
		rec := r.pending[0]
		r.pending = r.pending[1:]
		return rec, nil
	}
	rec, err := r.next()
	if err != nil {
		return rec, err
	}
	switch r.opt.Fault {
	case BitFlip:
		if len(rec.Data) > 0 && r.rng.Float64() < r.opt.Rate {
			i := r.rng.Intn(len(rec.Data))
			rec.Data[i] ^= 1 << uint(r.rng.Intn(8))
		}
	case TimestampJump:
		if r.rng.Float64() < r.opt.Rate {
			if r.rng.Intn(2) == 0 {
				r.shift += r.opt.Jump
			} else {
				r.shift -= r.opt.Jump / 2
			}
		}
		rec.Timestamp = rec.Timestamp.Add(r.shift)
	case Duplicate:
		if r.rng.Float64() < r.opt.Rate {
			cp := rec
			cp.Data = append([]byte(nil), rec.Data...)
			r.pending = append(r.pending, cp)
		}
	}
	return rec, nil
}

// Apply reads an entire classic-pcap capture and returns a new capture
// with the fault injected. For Truncate the returned bytes end mid-way
// through the final record, at a seed-chosen offset.
func Apply(src []byte, opt Options) ([]byte, error) {
	opt = opt.withDefaults()
	r, err := pcap.NewReader(bytes.NewReader(src))
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, pcap.WriterOptions{
		Nanosecond: r.Header().Nanosecond,
		SnapLen:    r.Header().SnapLen,
		LinkType:   r.Header().LinkType,
	})
	if err != nil {
		return nil, err
	}
	fr := NewReader(r.Next, opt)
	lastStart := buf.Len()
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		lastStart = buf.Len()
		if err := w.WriteRecord(rec.Timestamp, rec.Data); err != nil {
			return nil, err
		}
	}
	out := buf.Bytes()
	if opt.Fault == Truncate && buf.Len() > lastStart+1 {
		recLen := buf.Len() - lastStart
		cut := lastStart + 1 + fr.rng.Intn(recLen-1)
		out = out[:cut]
	}
	return out, nil
}
