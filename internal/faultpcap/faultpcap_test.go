package faultpcap

import (
	"bytes"
	"io"
	"testing"
	"time"

	"zoomlens/internal/pcap"
)

// smallCapture builds a classic pcap with n distinct records.
func smallCapture(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, pcap.WriterOptions{Nanosecond: true})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2022, 3, 1, 9, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 60)
		if err := w.WriteRecord(base.Add(time.Duration(i)*time.Millisecond), data); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func readAll(t *testing.T, capture []byte) ([]pcap.Record, bool) {
	t.Helper()
	r, err := pcap.NewReader(bytes.NewReader(capture))
	if err != nil {
		t.Fatal(err)
	}
	var recs []pcap.Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	return recs, r.Truncated()
}

func TestApplyDeterministic(t *testing.T) {
	src := smallCapture(t, 50)
	for _, f := range Faults() {
		a, err := Apply(src, Options{Fault: f, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		b, err := Apply(src, Options{Fault: f, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%v: same seed produced different output", f)
		}
	}
}

func TestTruncateCutsMidRecord(t *testing.T) {
	src := smallCapture(t, 10)
	out, err := Apply(src, Options{Fault: Truncate, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) >= len(src) {
		t.Fatalf("truncated capture not shorter: %d vs %d", len(out), len(src))
	}
	recs, truncated := readAll(t, out)
	if !truncated {
		t.Error("reader did not flag truncation")
	}
	if len(recs) >= 10 || len(recs) == 0 {
		t.Errorf("expected a partial prefix of records, got %d", len(recs))
	}
}

func TestBitFlipChangesPayloadOnly(t *testing.T) {
	src := smallCapture(t, 200)
	out, err := Apply(src, Options{Fault: BitFlip, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := readAll(t, src)
	recs, _ := readAll(t, out)
	if len(recs) != len(orig) {
		t.Fatalf("record count changed: %d vs %d", len(recs), len(orig))
	}
	changed := 0
	for i := range recs {
		if !bytes.Equal(recs[i].Data, orig[i].Data) {
			changed++
		}
		if !recs[i].Timestamp.Equal(orig[i].Timestamp) {
			t.Fatalf("record %d timestamp changed under BitFlip", i)
		}
	}
	if changed == 0 {
		t.Error("no payload was flipped across 200 records")
	}
}

func TestTimestampJumpShiftsTimes(t *testing.T) {
	src := smallCapture(t, 200)
	out, err := Apply(src, Options{Fault: TimestampJump, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := readAll(t, src)
	recs, _ := readAll(t, out)
	jumped := 0
	for i := range recs {
		if !recs[i].Timestamp.Equal(orig[i].Timestamp) {
			jumped++
		}
		if !bytes.Equal(recs[i].Data, orig[i].Data) {
			t.Fatalf("record %d payload changed under TimestampJump", i)
		}
	}
	if jumped == 0 {
		t.Error("no timestamp moved across 200 records")
	}
}

func TestDuplicateAddsRecords(t *testing.T) {
	src := smallCapture(t, 200)
	out, err := Apply(src, Options{Fault: Duplicate, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := readAll(t, src)
	recs, _ := readAll(t, out)
	if len(recs) <= len(orig) {
		t.Fatalf("expected duplicated records, got %d vs %d", len(recs), len(orig))
	}
}
