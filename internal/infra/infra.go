// Package infra models Zoom's server infrastructure as analyzed in
// Appendix B of the paper: the published IP address list (117 IPv4
// networks, 427,168 addresses split across Zoom's AS30103, AWS, and
// Oracle Cloud), the reverse-DNS naming scheme
// zoom<location><id><type>.<location>.zoom.us for multimedia routers
// (MMR) and zone controllers (ZC), and a GeoIP database — and implements
// the analysis pipeline (rDNS sweep + Geo aggregation) that regenerates
// Table 7.
//
// The inventory is synthetic but faithful in structure and totals: 5,452
// MMRs and 256 ZCs distributed over the locations of Table 7.
package infra

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"strings"
)

// ServerType distinguishes the two media-relevant server roles.
type ServerType int

// Server roles.
const (
	MMR ServerType = iota // multimedia router (Zoom's term for its SFU)
	ZC                    // zone controller (STUN endpoint)
)

func (t ServerType) String() string {
	if t == MMR {
		return "mmr"
	}
	return "zc"
}

// Location is a data-center site.
type Location struct {
	// Code is the two-letter site identifier used in hostnames.
	Code string
	// Country and City are for the Table 7 roll-up.
	Country string
	City    string
	// MMRs and ZCs are the server counts at this site.
	MMRs int
	ZCs  int
}

// Locations returns the Table 7 inventory. Counts are the paper's.
func Locations() []Location {
	return []Location{
		{"sc", "United States", "California (multiple)", 1410, 68},
		{"ny", "United States", "New York (New York City)", 1280, 62},
		{"dv", "United States", "Colorado (Denver)", 758, 21},
		{"va", "United States", "Virginia (Washington D.C.)", 166, 4},
		{"se", "United States", "Washington (Seattle)", 96, 12},
		{"am", "Netherlands", "Amsterdam", 419, 21},
		{"hk", "China", "Hongkong", 274, 8},
		{"fr", "Germany", "Frankfurt", 214, 2},
		{"sy", "Australia", "Sydney, Melbourne", 210, 20},
		{"in", "India", "Mumbai, Hyderabad", 196, 10},
		{"ty", "Japan", "Tokyo", 128, 2},
		{"sp", "Brasil", "Sao Paulo", 124, 6},
		{"to", "Canada", "Toronto", 93, 12},
		{"cn", "China", "Mainland", 84, 8},
	}
}

// Owner is an address-space owner.
type Owner int

// Address-space owners per Appendix B.
const (
	OwnerZoomAS Owner = iota // AS30103
	OwnerAWS
	OwnerOracle
	OwnerOther
)

func (o Owner) String() string {
	switch o {
	case OwnerZoomAS:
		return "AS30103 (Zoom)"
	case OwnerAWS:
		return "Amazon Web Services"
	case OwnerOracle:
		return "Oracle Cloud"
	}
	return "Other"
}

// Network is one published prefix with its owner.
type Network struct {
	Prefix netip.Prefix
	Owner  Owner
}

// Inventory is the modeled Zoom footprint.
type Inventory struct {
	Networks []Network
	// rdns maps server addresses to hostnames.
	rdns map[netip.Addr]string
	// geo maps server addresses to location codes (per-address, as a
	// lookup service like ipinfo.io behaves).
	geo map[netip.Addr]string
	// locations indexes Locations() by code.
	locations map[string]Location
}

// Build constructs the synthetic inventory: 117 networks whose sizes sum
// to 427,168 addresses, owner split ≈36.7 % AS30103 / 39.6 % AWS /
// 23.2 % Oracle / 0.5 % other, with the MMRs and ZCs of each location
// assigned addresses inside AS30103 space (as the paper observed: all
// media servers live in Zoom's own AS).
func Build(seed int64) *Inventory {
	rng := rand.New(rand.NewSource(seed))
	inv := &Inventory{
		rdns:      make(map[netip.Addr]string),
		geo:       make(map[netip.Addr]string),
		locations: make(map[string]Location),
	}
	// Prefix plan: exactly 117 networks of sizes /16../27 summing to
	// exactly 427,168 addresses with the paper's owner split:
	//   AS30103 156,672 (36.7 %)  AWS 169,152 (39.6 %)
	//   Oracle   99,456 (23.3 %)  other 1,888 (0.4 %)
	plan := []struct {
		bits  int
		count int
		owner Owner
	}{
		{16, 2, OwnerAWS}, {16, 1, OwnerZoomAS}, {16, 1, OwnerOracle},
		{19, 4, OwnerAWS}, {19, 11, OwnerZoomAS}, {19, 1, OwnerOracle},
		{20, 4, OwnerOracle},
		{22, 5, OwnerAWS}, {22, 1, OwnerZoomAS}, {22, 6, OwnerOracle},
		{24, 3, OwnerOracle},
		{25, 1, OwnerAWS}, {25, 19, OwnerOracle}, {25, 1, OwnerOther},
		{27, 2, OwnerAWS}, {27, 55, OwnerOther},
	}
	base := netip.MustParseAddr("52.81.0.0").As4()
	cursor := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	for _, pl := range plan {
		for i := 0; i < pl.count; i++ {
			size := uint32(1) << (32 - pl.bits)
			// Align cursor to the prefix size.
			if rem := cursor % size; rem != 0 {
				cursor += size - rem
			}
			addr := netip.AddrFrom4([4]byte{byte(cursor >> 24), byte(cursor >> 16), byte(cursor >> 8), byte(cursor)})
			inv.Networks = append(inv.Networks, Network{
				Prefix: netip.PrefixFrom(addr, pl.bits),
				Owner:  pl.owner,
			})
			cursor += size
		}
	}

	// Place servers: MMRs and ZCs get addresses in AS30103 prefixes.
	var zoomNets []Network
	for _, n := range inv.Networks {
		if n.Owner == OwnerZoomAS {
			zoomNets = append(zoomNets, n)
		}
	}
	netIdx, hostIdx := 0, uint32(1)
	nextAddr := func() netip.Addr {
		for {
			n := zoomNets[netIdx]
			size := uint32(1) << (32 - n.Prefix.Bits())
			if hostIdx >= size-1 {
				netIdx = (netIdx + 1) % len(zoomNets)
				hostIdx = 1
				continue
			}
			a := n.Prefix.Addr().As4()
			v := uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3]) + hostIdx
			hostIdx++
			return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
		}
	}
	for _, loc := range Locations() {
		inv.locations[loc.Code] = loc
		for i := 0; i < loc.MMRs; i++ {
			a := nextAddr()
			inv.rdns[a] = fmt.Sprintf("zoom%s%dmmr.%s.zoom.us", loc.Code, i+1, loc.Code)
			inv.geo[a] = loc.Code
		}
		for i := 0; i < loc.ZCs; i++ {
			a := nextAddr()
			inv.rdns[a] = fmt.Sprintf("zoom%s%dzc.%s.zoom.us", loc.Code, i+1, loc.Code)
			inv.geo[a] = loc.Code
		}
	}
	_ = rng
	return inv
}

// TotalAddresses sums the address space of all networks.
func (inv *Inventory) TotalAddresses() int {
	total := 0
	for _, n := range inv.Networks {
		total += 1 << (32 - n.Prefix.Bits())
	}
	return total
}

// OwnerShare returns the fraction of address space per owner.
func (inv *Inventory) OwnerShare() map[Owner]float64 {
	total := float64(inv.TotalAddresses())
	out := map[Owner]float64{}
	for _, n := range inv.Networks {
		out[n.Owner] += float64(int(1)<<(32-n.Prefix.Bits())) / total
	}
	return out
}

// ReverseDNS performs the modeled rDNS lookup.
func (inv *Inventory) ReverseDNS(a netip.Addr) (string, bool) {
	name, ok := inv.rdns[a]
	return name, ok
}

// GeoLookup returns the location code of an address (the ipinfo.io
// stand-in).
func (inv *Inventory) GeoLookup(a netip.Addr) (string, bool) {
	code, ok := inv.geo[a]
	return code, ok
}

// ParsedName is the result of decoding a hostname against the scheme
// zoom<location><id><type>.<location>.zoom.us.
type ParsedName struct {
	Location string
	ID       int
	Type     ServerType
}

// ParseName decodes a hostname; ok is false for names outside the
// scheme.
func ParseName(name string) (ParsedName, bool) {
	var p ParsedName
	rest, found := strings.CutPrefix(name, "zoom")
	if !found {
		return p, false
	}
	dot := strings.IndexByte(rest, '.')
	if dot < 0 {
		return p, false
	}
	head := rest[:dot]
	tail := rest[dot+1:]
	var typ ServerType
	switch {
	case strings.HasSuffix(head, "mmr"):
		typ = MMR
		head = strings.TrimSuffix(head, "mmr")
	case strings.HasSuffix(head, "zc"):
		typ = ZC
		head = strings.TrimSuffix(head, "zc")
	default:
		return p, false
	}
	// head is now <location><id> where location is two letters.
	if len(head) < 3 {
		return p, false
	}
	loc := head[:2]
	var id int
	if _, err := fmt.Sscanf(head[2:], "%d", &id); err != nil {
		return p, false
	}
	if !strings.HasPrefix(tail, loc+".zoom.us") {
		return p, false
	}
	return ParsedName{Location: loc, ID: id, Type: typ}, true
}

// LocationCount is one row of Table 7.
type LocationCount struct {
	Country string
	City    string
	MMRs    int
	ZCs     int
}

// SurveyResult is the full Table 7 reproduction.
type SurveyResult struct {
	Rows     []LocationCount
	TotalMMR int
	TotalZC  int
	// Resolved counts addresses whose rDNS matched the scheme.
	Resolved int
	Scanned  int
}

// Survey sweeps every address of every network, resolving rDNS, parsing
// the naming scheme, cross-checking with GeoIP, and aggregating counts
// per location — exactly the Appendix B methodology.
func (inv *Inventory) Survey() SurveyResult {
	var res SurveyResult
	counts := map[string]*LocationCount{}
	for _, n := range inv.Networks {
		for a := n.Prefix.Addr(); n.Prefix.Contains(a); a = a.Next() {
			res.Scanned++
			name, ok := inv.ReverseDNS(a)
			if !ok {
				continue
			}
			p, ok := ParseName(name)
			if !ok {
				continue
			}
			res.Resolved++
			loc, known := inv.locations[p.Location]
			if !known {
				continue
			}
			lc := counts[p.Location]
			if lc == nil {
				lc = &LocationCount{Country: loc.Country, City: loc.City}
				counts[p.Location] = lc
			}
			if p.Type == MMR {
				lc.MMRs++
				res.TotalMMR++
			} else {
				lc.ZCs++
				res.TotalZC++
			}
		}
	}
	for _, lc := range counts {
		res.Rows = append(res.Rows, *lc)
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		if res.Rows[i].MMRs != res.Rows[j].MMRs {
			return res.Rows[i].MMRs > res.Rows[j].MMRs
		}
		return res.Rows[i].City < res.Rows[j].City
	})
	return res
}
