package infra

import (
	"math"
	"net/netip"
	"testing"
)

func TestInventoryTotalsMatchAppendixB(t *testing.T) {
	inv := Build(1)
	if got := len(inv.Networks); got != 117 {
		t.Errorf("networks = %d, want 117", got)
	}
	if got := inv.TotalAddresses(); got != 427168 {
		t.Errorf("addresses = %d, want 427168", got)
	}
	shares := inv.OwnerShare()
	want := map[Owner]float64{
		OwnerZoomAS: 0.367,
		OwnerAWS:    0.396,
		OwnerOracle: 0.232,
		OwnerOther:  0.005,
	}
	for owner, w := range want {
		if got := shares[owner]; math.Abs(got-w) > 0.01 {
			t.Errorf("%v share = %.4f, want ≈%.3f", owner, got, w)
		}
	}
	// Prefix sizes within /16../27.
	for _, n := range inv.Networks {
		if n.Prefix.Bits() < 16 || n.Prefix.Bits() > 27 {
			t.Errorf("prefix %v outside /16../27", n.Prefix)
		}
	}
}

func TestNamingSchemeRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		want ParsedName
		ok   bool
	}{
		{"zoomny12mmr.ny.zoom.us", ParsedName{"ny", 12, MMR}, true},
		{"zoomsc1zc.sc.zoom.us", ParsedName{"sc", 1, ZC}, true},
		{"zoomfr214mmr.fr.zoom.us", ParsedName{"fr", 214, MMR}, true},
		{"www.zoom.us", ParsedName{}, false},
		{"zoomnyxmmr.ny.zoom.us", ParsedName{}, false},
		{"zoomny12mmr.dv.zoom.us", ParsedName{}, false}, // site mismatch
		{"zoomny12xyz.ny.zoom.us", ParsedName{}, false},
	}
	for _, c := range cases {
		got, ok := ParseName(c.name)
		if ok != c.ok {
			t.Errorf("ParseName(%q) ok = %v, want %v", c.name, ok, c.ok)
			continue
		}
		if ok && got != c.want {
			t.Errorf("ParseName(%q) = %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestSurveyReproducesTable7(t *testing.T) {
	inv := Build(1)
	res := inv.Survey()
	if res.TotalMMR != 5452 {
		t.Errorf("total MMRs = %d, want 5452", res.TotalMMR)
	}
	if res.TotalZC != 256 {
		t.Errorf("total ZCs = %d, want 256", res.TotalZC)
	}
	if res.Scanned != 427168 {
		t.Errorf("scanned = %d, want full sweep", res.Scanned)
	}
	if res.Resolved != 5452+256 {
		t.Errorf("resolved = %d", res.Resolved)
	}
	if len(res.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(res.Rows))
	}
	// Rows are ordered by MMR count: California first, NYC second.
	if res.Rows[0].City != "California (multiple)" || res.Rows[0].MMRs != 1410 || res.Rows[0].ZCs != 68 {
		t.Errorf("row 0 = %+v", res.Rows[0])
	}
	if res.Rows[1].City != "New York (New York City)" || res.Rows[1].MMRs != 1280 {
		t.Errorf("row 1 = %+v", res.Rows[1])
	}
	// US total: 3,710 MMRs / 167 ZCs.
	var usMMR, usZC int
	for _, r := range res.Rows {
		if r.Country == "United States" {
			usMMR += r.MMRs
			usZC += r.ZCs
		}
	}
	if usMMR != 3710 || usZC != 167 {
		t.Errorf("US totals = %d/%d, want 3710/167", usMMR, usZC)
	}
}

func TestServersLiveInZoomAS(t *testing.T) {
	inv := Build(1)
	// Every rDNS-known server address must fall inside an AS30103
	// prefix (the paper found all MMR/ZC names inside Zoom's own AS).
	var zoomNets []netip.Prefix
	for _, n := range inv.Networks {
		if n.Owner == OwnerZoomAS {
			zoomNets = append(zoomNets, n.Prefix)
		}
	}
	checked := 0
	for a := range inv.rdns {
		inZoom := false
		for _, p := range zoomNets {
			if p.Contains(a) {
				inZoom = true
				break
			}
		}
		if !inZoom {
			t.Fatalf("server %v outside AS30103 space", a)
		}
		checked++
	}
	if checked != 5708 {
		t.Errorf("servers = %d, want 5708", checked)
	}
}

func TestGeoLookupConsistentWithNaming(t *testing.T) {
	inv := Build(1)
	mismatches := 0
	for a, name := range inv.rdns {
		p, ok := ParseName(name)
		if !ok {
			t.Fatalf("unparseable name %q", name)
		}
		code, ok := inv.GeoLookup(a)
		if !ok {
			t.Fatalf("no geo for %v", a)
		}
		if code != p.Location {
			mismatches++
		}
	}
	// The paper notes one site (Frankfurt) whose GeoIP disagrees with
	// the naming scheme; our model keeps them consistent, so mismatches
	// only arise from /24s shared across sites at boundaries.
	if frac := float64(mismatches) / float64(len(inv.rdns)); frac > 0.02 {
		t.Errorf("geo/name mismatch fraction = %v", frac)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, b := Build(7), Build(7)
	if len(a.Networks) != len(b.Networks) {
		t.Fatal("network counts differ")
	}
	for i := range a.Networks {
		if a.Networks[i] != b.Networks[i] {
			t.Fatalf("network %d differs", i)
		}
	}
	ra, rb := a.Survey(), b.Survey()
	if ra.TotalMMR != rb.TotalMMR || ra.TotalZC != rb.TotalZC {
		t.Error("survey differs across builds")
	}
}
