// Package webrtc decodes standards RTP/SRTP-over-UDP as emitted by
// WebRTC-based conferencing applications (Meet, Webex, Teams, and the
// browser stacks the related work measures). Unlike Zoom, these
// applications carry no proprietary encapsulation: the UDP payload is
// the RTP (or RTCP) packet itself, with the payload encrypted (SRTP)
// but the header in the clear — exactly the situation of Sharma et al.,
// who estimate QoE from headers plus packet-size/timing heuristics.
//
// The decoder validates the RTP v2 header structurally (version bits,
// CSRC and extension length consistency, payload-type plausibility
// under the RFC 5761 RTP/RTCP demultiplexing rules) and classifies the
// media kind from the payload type and packet size: well-known audio
// payload types (static G.711/G.722/CN assignments and the conventional
// dynamic Opus mapping) are audio, conventional video mappings are
// video, and unknown dynamic payload types fall back to a size
// heuristic (audio packets are small and ptime-paced; video packets
// fill toward the MTU).
//
// Probe is deliberately conservative: on a Zoom-only trace nothing may
// be claimed as WebRTC, so a payload must survive every structural
// check before Decode is attempted. Zoom's own encapsulations always
// fail the version-bit check (their type bytes are < 0x80), so the two
// decoders never contend for the same packet.
//
// DTLS handshakes and TURN channel-data framing are NOT decoded here;
// flows using them appear as undecodable until SRTP flows directly over
// UDP (the common campus case after ICE completes).
package webrtc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"zoomlens/internal/rtp"
)

// Kind classifies the media carried by a standards RTP packet.
type Kind int

// Media kinds.
const (
	KindUnknown Kind = iota
	KindAudio
	KindVideo
	KindRTCP
)

func (k Kind) String() string {
	switch k {
	case KindAudio:
		return "audio"
	case KindVideo:
		return "video"
	case KindRTCP:
		return "rtcp"
	}
	return "unknown"
}

// AudioMaxPayload is the size-heuristic boundary for unknown dynamic
// payload types: Opus at conferencing bitrates with 10–20 ms ptime
// stays well under this, while video packets fill toward the MTU
// (Sharma et al. use the same separation).
const AudioMaxPayload = 250

// Errors returned by the decoder.
var (
	ErrNotRTP    = errors.New("webrtc: not an rtp/srtp packet")
	ErrTruncated = errors.New("webrtc: truncated packet")
)

// Packet is a decoded standards RTP or RTCP packet.
type Packet struct {
	// IsRTCP marks a compound RTCP packet (RFC 5761 demultiplexed by
	// the payload-type octet).
	IsRTCP bool
	// RTP is set when !IsRTCP. Its Payload is SRTP ciphertext plus the
	// auth tag; only the header fields are meaningful.
	RTP rtp.Packet
	// RTCP is set when IsRTCP.
	RTCP rtp.CompoundPacket
	// Kind is the inferred media kind.
	Kind Kind
}

// rtcpPTMin/rtcpPTMax bound the full second-octet values RFC 5761
// reserves for RTCP (conflict range 64–95 with the marker bit set:
// 192–223 covers SR/RR/SDES/BYE/APP/RTPFB/PSFB and the legacy FIR/NACK
// assignments).
const (
	rtcpPTMin = 192
	rtcpPTMax = 223
)

// Probe reports whether payload plausibly is a standards RTP or RTCP
// packet. It performs full structural validation of the RTP header (so
// an accepted RTP payload always parses) and claims the entire RFC 5761
// RTCP demultiplexing range: feedback packets (NACK, PLI, TWCC) belong
// to this protocol even though Parse models only SR/SDES/BYE compounds
// — they are claimed and then counted as undecodable rather than leaked
// to another plugin or misread as RTP.
func Probe(payload []byte) bool {
	if len(payload) < rtp.HeaderLen {
		return false
	}
	if payload[0]>>6 != rtp.Version {
		return false
	}
	if isRTCPOctet(payload[1]) {
		return probeRTCP(payload)
	}
	return probeRTP(payload)
}

func isRTCPOctet(b1 byte) bool { return b1 >= rtcpPTMin && b1 <= rtcpPTMax }

// probeRTP validates the RTP header structure without allocating.
func probeRTP(payload []byte) bool {
	b0 := payload[0]
	cc := int(b0 & 0x0f)
	off := rtp.HeaderLen + 4*cc
	if len(payload) < off {
		return false
	}
	if b0&0x10 != 0 { // extension
		if len(payload) < off+4 {
			return false
		}
		words := int(binary.BigEndian.Uint16(payload[off+2 : off+4]))
		off += 4 + 4*words
		if len(payload) < off {
			return false
		}
	}
	if b0&0x20 != 0 { // padding
		if len(payload) <= off {
			return false
		}
		pad := int(payload[len(payload)-1])
		if pad == 0 || pad > len(payload)-off {
			return false
		}
	}
	// SRTP media always carries ciphertext beyond the header.
	return len(payload) > off
}

// probeRTCP validates the leading RTCP header: length field consistent
// with the buffer (a compound packet may continue past it).
func probeRTCP(payload []byte) bool {
	words := int(binary.BigEndian.Uint16(payload[2:4]))
	return len(payload) >= 4*(words+1)
}

// Parse decodes a standards RTP/SRTP or RTCP payload. The returned
// packet's slices alias payload.
func Parse(payload []byte) (Packet, error) {
	var p Packet
	if len(payload) < rtp.HeaderLen {
		return p, fmt.Errorf("%w: %d bytes", ErrTruncated, len(payload))
	}
	if payload[0]>>6 != rtp.Version {
		return p, fmt.Errorf("%w: version %d", ErrNotRTP, payload[0]>>6)
	}
	if isRTCPOctet(payload[1]) {
		if !probeRTCP(payload) {
			return p, fmt.Errorf("%w: rtcp length field", ErrTruncated)
		}
		cp, err := rtp.ParseCompound(payload)
		if err != nil {
			return Packet{}, fmt.Errorf("webrtc: %w", err)
		}
		p.IsRTCP = true
		p.RTCP = cp
		p.Kind = KindRTCP
		return p, nil
	}
	if !probeRTP(payload) {
		return p, fmt.Errorf("%w: header structure", ErrNotRTP)
	}
	rp, err := rtp.Parse(payload)
	if err != nil {
		return Packet{}, fmt.Errorf("webrtc: %w", err)
	}
	p.RTP = rp
	p.Kind = ClassifyRTP(rp.PayloadType, len(rp.Payload))
	return p, nil
}

// ClassifyRTP infers the media kind of an RTP packet from its payload
// type and payload size. Known payload-type mappings win; unknown
// dynamic types fall back to the size heuristic. The classification is
// stateless and deterministic, so every packet of a substream (stable
// payload type) lands in the same stream.
func ClassifyRTP(pt uint8, payloadLen int) Kind {
	switch pt {
	case 0, 8, 9, 13, 111, 63:
		// PCMU, PCMA, G.722, comfort noise, conventional Opus, and the
		// Chrome red+opus mapping.
		return KindAudio
	case 96, 97, 98, 100, 101, 102, 127, 35, 45:
		// Conventional VP8/VP9/H.264/H.265/AV1 dynamic mappings.
		return KindVideo
	}
	if payloadLen > 0 && payloadLen <= AudioMaxPayload {
		return KindAudio
	}
	return KindVideo
}
