package webrtc

import (
	"testing"

	"zoomlens/internal/rtp"
)

func marshal(t *testing.T, p rtp.Packet) []byte {
	t.Helper()
	raw, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestParseRTP(t *testing.T) {
	p := rtp.Packet{
		Header: rtp.Header{
			PayloadType:    111,
			SequenceNumber: 100,
			Timestamp:      48000,
			SSRC:           0xabad1dea,
		},
		Payload: make([]byte, 90),
	}
	raw := marshal(t, p)
	got, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.IsRTCP {
		t.Fatal("classified RTP as RTCP")
	}
	if got.Kind != KindAudio {
		t.Errorf("Kind = %v, want audio", got.Kind)
	}
	if got.RTP.SSRC != p.SSRC || got.RTP.SequenceNumber != p.SequenceNumber {
		t.Errorf("header mismatch: %+v", got.RTP.Header)
	}
}

func TestParseRTCP(t *testing.T) {
	raw := rtp.MarshalSR(rtp.SenderReport{SSRC: 3, RTPTS: 10}, true)
	got, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsRTCP || got.Kind != KindRTCP {
		t.Fatalf("SR not classified as RTCP: %+v", got)
	}
	if len(got.RTCP.SenderReports) != 1 || got.RTCP.SenderReports[0].SSRC != 3 {
		t.Errorf("sender report not decoded: %+v", got.RTCP)
	}
}

func TestProbeRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":        nil,
		"short":        {0x80, 111, 0, 1},
		"version 0":    append([]byte{0x00}, make([]byte, 20)...),
		"version 1":    append([]byte{0x40, 111}, make([]byte, 20)...),
		"zoom type 5":  append([]byte{5}, make([]byte, 30)...),
		"header only":  marshalHeaderOnly(),
		"csrc overrun": {0x8f, 111, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1},
	}
	for name, payload := range cases {
		if Probe(payload) {
			t.Errorf("Probe accepted %s", name)
		}
	}
}

func marshalHeaderOnly() []byte {
	// A syntactically valid RTP header with zero payload: SRTP media
	// always carries ciphertext, so Probe must reject it.
	raw, _ := (&rtp.Packet{Header: rtp.Header{PayloadType: 96}}).Marshal()
	return raw
}

func TestClassifyRTP(t *testing.T) {
	cases := []struct {
		pt   uint8
		size int
		want Kind
	}{
		{0, 160, KindAudio},    // PCMU
		{8, 160, KindAudio},    // PCMA
		{111, 1200, KindAudio}, // Opus stays audio regardless of size
		{96, 60, KindVideo},    // VP8 stays video regardless of size
		{98, 1100, KindVideo},
		{119, 80, KindAudio},   // unknown dynamic, small → audio
		{119, 1100, KindVideo}, // unknown dynamic, large → video
	}
	for _, c := range cases {
		if got := ClassifyRTP(c.pt, c.size); got != c.want {
			t.Errorf("ClassifyRTP(%d, %d) = %v, want %v", c.pt, c.size, got, c.want)
		}
	}
}

// TestProbeParseAgreement enumerates header-bit combinations and checks
// the claim-check contract: every RTP payload Probe accepts must Parse,
// and Parse never panics on a claimed RTCP payload (unmodeled feedback
// types may fail with an error — claimed-but-undecodable is allowed).
func TestProbeParseAgreement(t *testing.T) {
	payload := make([]byte, 64)
	for b0 := 0; b0 < 256; b0++ {
		for b1 := 0; b1 < 256; b1++ {
			payload[0], payload[1] = byte(b0), byte(b1)
			if !Probe(payload) {
				continue
			}
			_, err := Parse(payload)
			if err != nil && !isRTCPOctet(byte(b1)) {
				t.Fatalf("Probe accepted RTP %#02x %#02x but Parse failed: %v", b0, b1, err)
			}
		}
	}
}

// FuzzWebRTCParse is the decoder's crash-safety fuzz target (wired into
// make fuzz-smoke): Parse must never panic, and must agree with Probe.
func FuzzWebRTCParse(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x80, 111, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0xaa})
	f.Add(rtp.MarshalSR(rtp.SenderReport{SSRC: 1}, true))
	seed := rtp.Packet{Header: rtp.Header{PayloadType: 96, Extension: true, ExtensionProfile: 0xbede, ExtensionData: []byte{1, 2, 3, 4}}, Payload: []byte{9, 9}}
	if raw, err := seed.Marshal(); err == nil {
		f.Add(raw)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil && Probe(data) && !(len(data) >= 2 && isRTCPOctet(data[1])) {
			t.Fatalf("Probe accepted RTP but Parse failed: %v", err)
		}
		if err == nil && !p.IsRTCP {
			// Classification must be deterministic and total.
			if k := ClassifyRTP(p.RTP.PayloadType, len(p.RTP.Payload)); k == KindUnknown {
				t.Fatal("ClassifyRTP returned unknown")
			}
		}
	})
}
