// Command zoominfra reproduces the Appendix B infrastructure analysis:
// it sweeps the modeled Zoom address space, resolves reverse DNS, parses
// the zoom<loc><id><type>.<loc>.zoom.us naming scheme, cross-checks with
// the GeoIP model, and prints Table 7 along with the ownership split of
// the address space.
//
// Usage:
//
//	zoominfra [-seed 1]
package main

import (
	"flag"
	"fmt"

	"zoomlens"
	"zoomlens/internal/infra"
)

func main() {
	seed := flag.Int64("seed", 1, "inventory seed")
	flag.Parse()

	inv := zoomlens.BuildInventory(*seed)
	fmt.Printf("Zoom publishes %d IPv4 networks totalling %d addresses\n\n", len(inv.Networks), inv.TotalAddresses())

	fmt.Println("Address space by owner:")
	shares := inv.OwnerShare()
	for _, owner := range []infra.Owner{infra.OwnerZoomAS, infra.OwnerAWS, infra.OwnerOracle, infra.OwnerOther} {
		fmt.Printf("  %-22s %5.1f%%\n", owner, 100*shares[owner])
	}
	fmt.Println()

	res := inv.Survey()
	fmt.Printf("rDNS sweep: %d addresses scanned, %d resolved to the MMR/ZC naming scheme\n\n", res.Scanned, res.Resolved)
	fmt.Print(zoomlens.Table7(inv))
}
