// Command zoominfra reproduces the Appendix B infrastructure analysis:
// it sweeps the modeled Zoom address space, resolves reverse DNS, parses
// the zoom<loc><id><type>.<loc>.zoom.us naming scheme, cross-checks with
// the GeoIP model, and prints Table 7 along with the ownership split of
// the address space.
//
// With -i it additionally cross-checks a capture against the inventory:
// which Zoom server addresses the trace actually talked to, how the
// observed traffic splits across owners, and which observed endpoints
// fall outside the published networks (the gap Appendix B calls out
// between the advertised footprint and live traffic). The input may be
// classic pcap or pcapng, or "-" for stdin.
//
// Usage:
//
//	zoominfra [-seed 1] [-i zoom.pcap]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/netip"
	"sort"

	"zoomlens"
	"zoomlens/internal/engine"
	"zoomlens/internal/infra"
	"zoomlens/internal/layers"
	"zoomlens/internal/pcap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoominfra: ")
	var (
		seed = flag.Int64("seed", 1, "inventory seed")
		in   = flag.String("i", "", "optional capture to cross-check against the inventory (pcap/pcapng, \"-\" for stdin)")
	)
	flag.Parse()

	inv := zoomlens.BuildInventory(*seed)
	fmt.Printf("Zoom publishes %d IPv4 networks totalling %d addresses\n\n", len(inv.Networks), inv.TotalAddresses())

	fmt.Println("Address space by owner:")
	shares := inv.OwnerShare()
	for _, owner := range []infra.Owner{infra.OwnerZoomAS, infra.OwnerAWS, infra.OwnerOracle, infra.OwnerOther} {
		fmt.Printf("  %-22s %5.1f%%\n", owner, 100*shares[owner])
	}
	fmt.Println()

	res := inv.Survey()
	fmt.Printf("rDNS sweep: %d addresses scanned, %d resolved to the MMR/ZC naming scheme\n\n", res.Scanned, res.Resolved)
	fmt.Print(zoomlens.Table7(inv))

	if *in != "" {
		if err := crossCheck(inv, *in); err != nil {
			log.Fatal(err)
		}
	}
}

// crossCheck streams a capture through engine.Source and compares the
// server endpoints it observes against the inventory's networks.
func crossCheck(inv *infra.Inventory, path string) error {
	src, err := engine.Open(path)
	if err != nil {
		return err
	}
	defer src.Close()

	zoomNets := zoomlens.DefaultZoomNetworks()
	inZoom := func(a netip.Addr) bool {
		for _, p := range zoomNets {
			if p.Contains(a) {
				return true
			}
		}
		return false
	}
	ownerOf := func(a netip.Addr) (infra.Owner, bool) {
		for _, n := range inv.Networks {
			if n.Prefix.Contains(a) {
				return n.Owner, true
			}
		}
		return 0, false
	}

	var parser layers.Parser
	var pkt layers.Packet
	var rec pcap.Record
	var packets, undecodable uint64
	servers := make(map[netip.Addr]uint64)
	for {
		err := src.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		packets++
		if err := parser.Parse(rec.Data, &pkt); err != nil {
			undecodable++
			continue
		}
		for _, a := range []netip.Addr{pkt.SrcAddr(), pkt.DstAddr()} {
			if a.IsValid() && inZoom(a) {
				servers[a]++
			}
		}
	}

	fmt.Printf("\nCapture cross-check (%d packets", packets)
	if src.Truncated() {
		fmt.Print(", truncated")
	}
	fmt.Printf("):\n")
	if len(servers) == 0 {
		fmt.Println("  no Zoom server addresses observed")
		return nil
	}

	byOwner := make(map[infra.Owner]uint64)
	var unlisted []netip.Addr
	var unlistedPkts uint64
	for a, n := range servers {
		if owner, ok := ownerOf(a); ok {
			byOwner[owner] += n
		} else {
			unlisted = append(unlisted, a)
			unlistedPkts += n
		}
	}
	fmt.Printf("  %d distinct Zoom server addresses observed\n", len(servers))
	fmt.Println("  observed packets by owner:")
	for _, owner := range []infra.Owner{infra.OwnerZoomAS, infra.OwnerAWS, infra.OwnerOracle, infra.OwnerOther} {
		if byOwner[owner] > 0 {
			fmt.Printf("    %-22s %d\n", owner, byOwner[owner])
		}
	}
	if len(unlisted) > 0 {
		sort.Slice(unlisted, func(i, j int) bool { return unlisted[i].Compare(unlisted[j]) < 0 })
		fmt.Printf("  %d observed addresses (%d packets) outside the published networks:\n", len(unlisted), unlistedPkts)
		for i, a := range unlisted {
			if i == 10 {
				fmt.Printf("    ... and %d more\n", len(unlisted)-10)
				break
			}
			fmt.Printf("    %s\n", a)
		}
	}
	if undecodable > 0 {
		fmt.Printf("  %d undecodable frames skipped\n", undecodable)
	}
	return nil
}
