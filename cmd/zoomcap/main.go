// Command zoomcap is the software twin of the paper's Tofino capture
// program (§6.1, Figure 13): it reads a pcap, keeps only Zoom traffic
// (server-based, STUN, and stateful P2P), optionally anonymizes campus
// addresses, and writes a filtered pcap.
//
// Usage:
//
//	zoomcap -i all.pcap -o zoom.pcap [-anon -key secret] [-workers N] [-resources]
//
// The input may be classic pcap or pcapng, and "-i -" reads from stdin.
//
// With -metrics-addr the filter's verdict counters are served live in
// Prometheus text format (plus expvar and pprof) — the software stand-in
// for reading the Tofino pipeline's counters mid-capture; -trace prints
// a per-stage timing report at exit.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"zoomlens"
	"zoomlens/internal/capture"
	"zoomlens/internal/cliobs"
	"zoomlens/internal/engine"
	"zoomlens/internal/layers"
	"zoomlens/internal/obs"
	"zoomlens/internal/pcap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoomcap: ")
	var (
		in        = flag.String("i", "", "input pcap path (\"-\" = stdin)")
		live      = flag.String("live", "", "capture live from this interface instead of a file (Linux, needs CAP_NET_RAW)")
		duration  = flag.Duration("duration", 0, "stop live capture after this long (0 = until interrupted)")
		out       = flag.String("o", "zoom.pcap", "output pcap path")
		campus    = flag.String("campus", "10.8.0.0/16", "comma-separated campus prefixes")
		anon      = flag.Bool("anon", false, "anonymize campus addresses")
		anonMode  = flag.String("anon-mode", "hash", "anonymization mode: hash | prefix (prefix-preserving Crypto-PAn)")
		key       = flag.String("key", "zoomlens", "anonymization key")
		validate  = flag.Bool("validate-p2p", true, "reject P2P table hits whose payload is not Zoom media format")
		workers   = flag.Int("workers", 1, "anonymization workers: 1 = in-line, 0 = one per CPU (only used with -anon)")
		resources = flag.Bool("resources", false, "print the Table 5 hardware resource model and exit")
		exportP4  = flag.Bool("export-p4", false, "print the generated P4 capture program and exit")
	)
	obsFlags := cliobs.RegisterMetrics(flag.CommandLine)
	flag.Parse()

	if *resources {
		fmt.Print(zoomlens.Table5())
		return
	}
	if *exportP4 {
		fmt.Print(capture.GenerateP4(zoomlens.DefaultZoomNetworks(), 1<<16))
		return
	}
	if *in == "" && *live == "" {
		log.Fatal("missing -i input pcap (or -live interface)")
	}
	campusNets, err := parsePrefixes(*campus)
	if err != nil {
		log.Fatal(err)
	}

	// nextInto fills a record whose Data borrows the source's buffer —
	// valid only until the next call. The filter and the in-line sink run
	// before the next read, and the fan-out sink copies at enqueue.
	var nextInto func(*pcap.Record) error
	var truncated func() bool
	var stopAt time.Time
	nano := true
	if *live != "" {
		liveNext, closeFn, err := openLive(*live, 0)
		if err != nil {
			log.Fatal(err)
		}
		defer closeFn()
		nextInto = func(rec *pcap.Record) error {
			r, err := liveNext()
			if err != nil {
				return err
			}
			*rec = r
			return nil
		}
		if *duration > 0 {
			stopAt = time.Now().Add(*duration)
		}
	} else {
		src, err := engine.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer src.Close()
		nano = src.Nanosecond()
		nextInto = src.NextInto
		truncated = src.Truncated
	}
	outF, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer outF.Close()
	w, err := pcap.NewWriter(outF, pcap.WriterOptions{Nanosecond: nano})
	if err != nil {
		log.Fatal(err)
	}

	setup, err := obsFlags.Apply()
	if err != nil {
		log.Fatal(err)
	}
	defer setup.Close()

	filter := capture.NewFilter(capture.Config{
		ZoomNetworks:       zoomlens.DefaultZoomNetworks(),
		CampusNetworks:     campusNets,
		ValidateP2PPayload: *validate,
	})
	mirrorStats := statsMirror(setup, filter)
	newAnonymizer := func() *capture.Anonymizer { return nil }
	if *anon {
		switch *anonMode {
		case "hash":
			newAnonymizer = func() *capture.Anonymizer { return capture.NewAnonymizer([]byte(*key), campusNets) }
		case "prefix":
			newAnonymizer = func() *capture.Anonymizer { return capture.NewPrefixAnonymizer([]byte(*key), campusNets) }
		default:
			log.Fatalf("unknown -anon-mode %q", *anonMode)
		}
	}
	write, closeSink := newSink(w, *anon, *workers, newAnonymizer)

	// SIGINT/SIGTERM finishes the run instead of killing it: the sink is
	// drained and closed, so the output pcap stays valid and complete up
	// to the interruption — essential for -live captures.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	interrupted := false

	parser := &layers.Parser{}
	var pkt layers.Packet
	var rec pcap.Record
	var seen uint64
	captureDone := setup.Stage("capture")
readLoop:
	for {
		select {
		case <-sig:
			interrupted = true
			break readLoop
		default:
		}
		if !stopAt.IsZero() && time.Now().After(stopAt) {
			break
		}
		err := nextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			if *live != "" {
				continue // transient receive error on a live socket
			}
			log.Fatal(err)
		}
		seen++
		if seen%1024 == 0 {
			mirrorStats()
		}
		if parser.Parse(rec.Data, &pkt) != nil {
			continue
		}
		if !filter.Classify(&pkt, rec.Timestamp).Keep() {
			continue
		}
		if err := write(rec.Timestamp, rec.Data); err != nil {
			log.Fatal(err)
		}
	}
	captureDone()
	select {
	case <-sig:
		interrupted = true
	default:
	}
	signal.Stop(sig)
	drainDone := setup.Stage("drain")
	if err := closeSink(); err != nil {
		log.Fatal(err)
	}
	drainDone()
	mirrorStats()
	st := filter.Stats()
	note := ""
	if interrupted {
		note = " (interrupted: output is a valid partial capture)"
	} else if truncated != nil && truncated() {
		note = " (input truncated mid-record: output covers the readable prefix)"
	}
	fmt.Printf("processed %d packets: server %d, stun %d, p2p %d (format-rejected %d), dropped %d%s\n",
		st.Processed, st.ZoomServer, st.ZoomSTUN, st.ZoomP2P, st.P2PFormatRejected, st.Dropped, note)
}

// statsMirror publishes the filter's verdict counters to the metrics
// registry. The filter itself stays untouched — its stats are plain
// fields — so the mirror copies them into atomic handles on a packet
// cadence. Returns a no-op when -metrics-addr is off.
func statsMirror(setup *cliobs.Setup, filter *capture.Filter) func() {
	reg := setup.Registry
	if reg == nil {
		return func() {}
	}
	verdict := func(v string) *obs.Counter {
		return reg.Counter("zoomcap_filter_packets_total",
			"capture filter verdicts (Figure 13 pipeline)", obs.L("verdict", v))
	}
	processed := reg.Counter("zoomcap_packets_total", "packets examined by the capture filter")
	server, stun, p2p := verdict("server"), verdict("stun"), verdict("p2p")
	rejected, dropped := verdict("p2p_format_rejected"), verdict("dropped")
	p2pTable := reg.Gauge("zoomcap_p2p_table_churn", "P2P table inserts minus evictions")
	return func() {
		st := filter.Stats()
		processed.Store(st.Processed)
		server.Store(st.ZoomServer)
		stun.Store(st.ZoomSTUN)
		p2p.Store(st.ZoomP2P)
		rejected.Store(st.P2PFormatRejected)
		dropped.Store(st.Dropped)
		p2pTable.Set(int64(st.P2PInserted) - int64(st.P2PEvicted))
	}
}

// newSink returns the record write path. The caller's data is borrowed
// (it aliases the reader's buffer and dies at the next read). Without
// anonymization (or with one worker) records are written in-line —
// anonymize the borrowed bytes in place, write, done before the next
// read. With -anon and several workers, anonymization — the only
// CPU-heavy per-packet stage left after filtering — fans out to a pool,
// so each record is first copied into a pooled buffer at enqueue; a
// single writer goroutine preserves capture order: every record enters
// a FIFO alongside its shared work queue, and the writer completes FIFO
// entries strictly in arrival order as workers finish them, recycling
// each buffer after the write. Each worker owns a private Anonymizer
// (the address cache is not goroutine-safe); the mapping is a pure
// function of the key, so per-worker caches yield identical output
// bytes regardless of which worker handles a packet.
func newSink(w *pcap.Writer, anon bool, workers int, newAnonymizer func() *capture.Anonymizer) (func(time.Time, []byte) error, func() error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if !anon || workers == 1 {
		anonymizer := newAnonymizer()
		write := func(ts time.Time, data []byte) error {
			if anonymizer != nil {
				anonymizer.AnonymizeInPlace(data)
			}
			return w.WriteRecord(ts, data)
		}
		return write, func() error { return nil }
	}

	type job struct {
		ts   time.Time
		buf  *[]byte
		done chan struct{}
	}
	bufPool := sync.Pool{New: func() any { b := make([]byte, 0, 2048); return &b }}
	depth := workers * 4
	jobs := make(chan *job, depth)  // shared worker input
	order := make(chan *job, depth) // arrival-order FIFO for the writer
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			anonymizer := newAnonymizer()
			for j := range jobs {
				anonymizer.AnonymizeInPlace(*j.buf)
				close(j.done)
			}
		}()
	}
	var writeErr error
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for j := range order {
			<-j.done
			if writeErr == nil {
				writeErr = w.WriteRecord(j.ts, *j.buf)
			}
			bufPool.Put(j.buf)
		}
	}()
	write := func(ts time.Time, data []byte) error {
		bp := bufPool.Get().(*[]byte)
		*bp = append((*bp)[:0], data...)
		j := &job{ts: ts, buf: bp, done: make(chan struct{})}
		order <- j
		jobs <- j
		return nil
	}
	closeSink := func() error {
		close(jobs)
		close(order)
		wg.Wait()
		<-writerDone
		return writeErr
	}
	return write, closeSink
}

func parsePrefixes(s string) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := netip.ParsePrefix(part)
		if err != nil {
			return nil, fmt.Errorf("bad prefix %q: %w", part, err)
		}
		out = append(out, p)
	}
	return out, nil
}
