// Command zoomcap is the software twin of the paper's Tofino capture
// program (§6.1, Figure 13): it reads a pcap, keeps only Zoom traffic
// (server-based, STUN, and stateful P2P), optionally anonymizes campus
// addresses, and writes a filtered pcap.
//
// Usage:
//
//	zoomcap -i all.pcap -o zoom.pcap [-anon -key secret] [-resources]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/netip"
	"os"
	"strings"
	"time"

	"zoomlens"
	"zoomlens/internal/capture"
	"zoomlens/internal/layers"
	"zoomlens/internal/pcap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoomcap: ")
	var (
		in        = flag.String("i", "", "input pcap path")
		live      = flag.String("live", "", "capture live from this interface instead of a file (Linux, needs CAP_NET_RAW)")
		duration  = flag.Duration("duration", 0, "stop live capture after this long (0 = until interrupted)")
		out       = flag.String("o", "zoom.pcap", "output pcap path")
		campus    = flag.String("campus", "10.8.0.0/16", "comma-separated campus prefixes")
		anon      = flag.Bool("anon", false, "anonymize campus addresses")
		anonMode  = flag.String("anon-mode", "hash", "anonymization mode: hash | prefix (prefix-preserving Crypto-PAn)")
		key       = flag.String("key", "zoomlens", "anonymization key")
		validate  = flag.Bool("validate-p2p", true, "reject P2P table hits whose payload is not Zoom media format")
		resources = flag.Bool("resources", false, "print the Table 5 hardware resource model and exit")
		exportP4  = flag.Bool("export-p4", false, "print the generated P4 capture program and exit")
	)
	flag.Parse()

	if *resources {
		fmt.Print(zoomlens.Table5())
		return
	}
	if *exportP4 {
		fmt.Print(capture.GenerateP4(zoomlens.DefaultZoomNetworks(), 1<<16))
		return
	}
	if *in == "" && *live == "" {
		log.Fatal("missing -i input pcap (or -live interface)")
	}
	campusNets, err := parsePrefixes(*campus)
	if err != nil {
		log.Fatal(err)
	}

	var next func() (pcap.Record, error)
	var stopAt time.Time
	nano := true
	if *live != "" {
		liveNext, closeFn, err := openLive(*live, 0)
		if err != nil {
			log.Fatal(err)
		}
		defer closeFn()
		next = liveNext
		if *duration > 0 {
			stopAt = time.Now().Add(*duration)
		}
	} else {
		inF, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer inF.Close()
		r, err := pcap.NewReader(inF)
		if err != nil {
			log.Fatal(err)
		}
		nano = r.Header().Nanosecond
		next = func() (pcap.Record, error) { return r.Next() }
	}
	outF, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer outF.Close()
	w, err := pcap.NewWriter(outF, pcap.WriterOptions{Nanosecond: nano})
	if err != nil {
		log.Fatal(err)
	}

	filter := capture.NewFilter(capture.Config{
		ZoomNetworks:       zoomlens.DefaultZoomNetworks(),
		CampusNetworks:     campusNets,
		ValidateP2PPayload: *validate,
	})
	var anonymizer *capture.Anonymizer
	if *anon {
		switch *anonMode {
		case "hash":
			anonymizer = capture.NewAnonymizer([]byte(*key), campusNets)
		case "prefix":
			anonymizer = capture.NewPrefixAnonymizer([]byte(*key), campusNets)
		default:
			log.Fatalf("unknown -anon-mode %q", *anonMode)
		}
	}

	parser := &layers.Parser{}
	var pkt layers.Packet
	for {
		if !stopAt.IsZero() && time.Now().After(stopAt) {
			break
		}
		rec, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if *live != "" {
				continue // transient receive error on a live socket
			}
			log.Fatal(err)
		}
		if parser.Parse(rec.Data, &pkt) != nil {
			continue
		}
		if !filter.Classify(&pkt, rec.Timestamp).Keep() {
			continue
		}
		if anonymizer != nil {
			anonymizer.AnonymizeInPlace(rec.Data)
		}
		if err := w.WriteRecord(rec.Timestamp, rec.Data); err != nil {
			log.Fatal(err)
		}
	}
	st := filter.Stats()
	fmt.Printf("processed %d packets: server %d, stun %d, p2p %d (format-rejected %d), dropped %d\n",
		st.Processed, st.ZoomServer, st.ZoomSTUN, st.ZoomP2P, st.P2PFormatRejected, st.Dropped)
}

func parsePrefixes(s string) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := netip.ParsePrefix(part)
		if err != nil {
			return nil, fmt.Errorf("bad prefix %q: %w", part, err)
		}
		out = append(out, p)
	}
	return out, nil
}
