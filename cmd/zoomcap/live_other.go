//go:build !linux

package main

import (
	"errors"

	"zoomlens/internal/pcap"
)

func openLive(ifname string, snaplen int) (func() (pcap.Record, error), func() error, error) {
	return nil, nil, errors.New("live capture requires Linux (AF_PACKET)")
}
