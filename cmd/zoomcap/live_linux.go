//go:build linux

package main

import (
	"time"

	"zoomlens/internal/pcap"
)

// openLive is the Linux AF_PACKET implementation.
func openLive(ifname string, snaplen int) (next func() (pcap.Record, error), closeFn func() error, err error) {
	src, err := pcap.OpenLive(ifname, snaplen)
	if err != nil {
		return nil, nil, err
	}
	// A short receive timeout lets the caller's loop re-check its
	// stop condition; timeouts surface as transient errors.
	if err := src.SetReadDeadlineBestEffort(500 * time.Millisecond); err != nil {
		src.Close()
		return nil, nil, err
	}
	return src.Next, src.Close, nil
}
