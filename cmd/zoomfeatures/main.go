// Command zoomfeatures exports per-stream-second feature vectors from a
// Zoom pcap for ML-based QoE inference — the §8 application of the
// paper ("our system can help automatically generate large,
// feature-rich data sets from real-world traffic").
//
// Usage:
//
//	zoomfeatures -i zoom.pcap > features.csv
//
// Input, engine sizing, bounded-state, checkpoint/rotation, and
// live-observability flags are the shared driver's (internal/engine):
// -i (use "-" for stdin; classic pcap or pcapng), -workers, -max-flows,
// -max-streams, -flow-ttl, -quarantine, -checkpoint, -restore, -rotate,
// -metrics-addr, -snapshot-interval, -snapshot-out, -trace. None of the
// observability flags changes the final CSV.
package main

import (
	"bufio"
	"flag"
	"log"
	"os"

	"zoomlens"
	"zoomlens/internal/engine"
	"zoomlens/internal/features"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoomfeatures: ")
	minPkts := flag.Uint64("min-packets", 50, "skip streams with fewer packets")
	ef := engine.Register(flag.CommandLine)
	flag.Parse()

	run, err := ef.Run(zoomlens.DefaultZoomNetworks())
	if err != nil {
		log.Fatal(err)
	}
	defer run.Close()
	defer run.EmitStatus()
	defer run.Stage("report")()
	a := run.Analyzer

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	header := true
	var rows int
	for _, id := range a.StreamIDs() {
		sm, _ := a.MetricsFor(id)
		if sm.Packets < *minPkts {
			continue
		}
		rs := features.Extract(id.Key.SSRC, id.Key.Type, sm)
		if err := features.WriteCSV(w, rs, header); err != nil {
			log.Fatal(err)
		}
		header = false
		rows += len(rs)
	}
	log.Printf("wrote %d feature rows", rows)
}
