// Command zoomfeatures is the header-free QoE inference workbench — the
// §8 application of the paper ("our system can help automatically
// generate large, feature-rich data sets from real-world traffic").
// It has three modes:
//
// Extract (default) streams per-stream feature vectors out of a capture
// as versioned CSV. The rows come from the engine's streaming windower
// — the same rows a live tap, a parallel run, or a cluster aggregation
// emits, byte-identical at any worker count:
//
//	zoomfeatures -i zoom.pcap > features.csv
//	zoomfeatures -i zoom.pcap -features features.csv -feature-window 1s
//
// Train fits the QoE model: feature rows joined against client-side
// ground truth (a zoomsim -qos-out log, or any log in the same format),
// labeled, and fed to deterministic logistic regression:
//
//	zoomfeatures -train -data features.csv -qos qos.csv -model model.json
//
// Eval scores a model against a labeled set, reporting accuracy versus
// the majority-class baseline:
//
//	zoomfeatures -eval -data features.csv -qos qos.csv -model model.json
//
// Extract mode takes the shared driver's input, engine-sizing,
// bounded-state, checkpoint/rotation, and live-observability flags
// (internal/engine); -predict/-model classify live during extraction.
// None of the observability flags changes the CSV.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"zoomlens"
	"zoomlens/internal/engine"
	"zoomlens/internal/features"
	"zoomlens/internal/predict"
	"zoomlens/internal/qos"
	"zoomlens/internal/zoom"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoomfeatures: ")
	var (
		train     = flag.Bool("train", false, "fit a QoE model from -data joined with -qos, write it to -model")
		eval      = flag.Bool("eval", false, "score the -model against -data joined with -qos")
		dataPath  = flag.String("data", "", "feature CSV (from extract mode) for -train/-eval")
		qosPath   = flag.String("qos", "", "ground-truth QoS log (zoomsim -qos-out format) for -train/-eval")
		client    = flag.String("client", "", "label with this client's QoS series only (default: all clients, merged in time order)")
		targetFPS = flag.Float64("target-fps", 30, "nominal sender frame rate the labels grade against")
	)
	ef := engine.Register(flag.CommandLine)
	flag.Parse()

	if *train && *eval {
		log.Fatal("-train and -eval are separate modes; run them one at a time")
	}
	if *train || *eval {
		labeled := loadLabeled(*dataPath, *qosPath, *client, *targetFPS)
		if *train {
			runTrain(labeled, ef.Model)
		} else {
			runEval(labeled, ef.Model)
		}
		return
	}

	// Extract mode: the CSV destination defaults to stdout, and the
	// streaming feature layer is always on — it is the whole point of
	// this tool.
	if ef.Features == "" {
		ef.Features = "-"
	}
	run, err := ef.Run(zoomlens.DefaultZoomNetworks())
	if err != nil {
		log.Fatal(err)
	}
	defer run.Close()
	defer run.EmitStatus()
	if run.Predictions > 0 {
		log.Printf("wrote %d feature rows (%d video windows classified)", run.FeatureRows, run.Predictions)
	} else {
		log.Printf("wrote %d feature rows", run.FeatureRows)
	}
}

// loadLabeled reads the feature CSV and QoS log and joins them into a
// labeled video-row training set.
func loadLabeled(dataPath, qosPath, client string, targetFPS float64) []features.LabeledRow {
	if dataPath == "" || qosPath == "" {
		log.Fatal("-train/-eval need -data (feature CSV) and -qos (ground-truth log)")
	}
	df, err := os.Open(dataPath)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := features.ReadCSV(df)
	df.Close()
	if err != nil {
		log.Fatal(err)
	}
	qdata, err := os.ReadFile(qosPath)
	if err != nil {
		log.Fatal(err)
	}
	logs, err := qos.ParseLog(qdata)
	if err != nil {
		log.Fatal(err)
	}
	var entries []qos.Entry
	if client != "" {
		var ok bool
		entries, ok = logs[client]
		if !ok {
			log.Fatalf("client %q not in %s", client, qosPath)
		}
	} else {
		for _, es := range logs {
			entries = append(entries, es...)
		}
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].Time.Before(entries[j].Time) })
	}
	// QoE labels grade received video; other media types train nothing.
	video := rows[:0]
	for _, r := range rows {
		if r.ID.Key.Type == zoom.TypeVideo {
			video = append(video, r)
		}
	}
	labeled := features.Join(video, entries, targetFPS)
	if len(labeled) == 0 {
		log.Fatalf("no labeled rows: %s has %d video rows, %s has %d entries, but no window overlaps", dataPath, len(video), qosPath, len(entries))
	}
	return labeled
}

func runTrain(labeled []features.LabeledRow, modelPath string) {
	if modelPath == "" {
		log.Fatal("-train needs -model (output path)")
	}
	m, err := predict.Train(labeled, predict.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}
	mf, err := os.Create(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Save(mf); err != nil {
		log.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		log.Fatal(err)
	}
	ev := predict.Evaluate(m, labeled)
	log.Printf("trained on %d rows; training accuracy %.3f (majority baseline %.3f)", ev.N, ev.Accuracy, ev.Baseline)
}

func runEval(labeled []features.LabeledRow, modelPath string) {
	if modelPath == "" {
		log.Fatal("-eval needs -model (a trained model)")
	}
	mf, err := os.Open(modelPath)
	if err != nil {
		log.Fatal(err)
	}
	m, err := predict.Load(mf)
	mf.Close()
	if err != nil {
		log.Fatal(err)
	}
	ev := predict.Evaluate(m, labeled)
	out := struct {
		N         int                                         `json:"n"`
		Accuracy  float64                                     `json:"accuracy"`
		Baseline  float64                                     `json:"baseline"`
		Confusion [features.NumLabels][features.NumLabels]int `json:"confusion"`
		Labels    [features.NumLabels]string                  `json:"labels"`
	}{
		N: ev.N, Accuracy: ev.Accuracy, Baseline: ev.Baseline, Confusion: ev.Confusion,
	}
	for i := 0; i < features.NumLabels; i++ {
		out.Labels[i] = features.Label(i).String()
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
}
