// Command zoomfeatures exports per-stream-second feature vectors from a
// Zoom pcap for ML-based QoE inference — the §8 application of the
// paper ("our system can help automatically generate large,
// feature-rich data sets from real-world traffic").
//
// Usage:
//
//	zoomfeatures -i zoom.pcap > features.csv
package main

import (
	"bufio"
	"flag"
	"log"
	"os"

	"zoomlens"
	"zoomlens/internal/features"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoomfeatures: ")
	var (
		in      = flag.String("i", "", "input pcap path")
		minPkts = flag.Uint64("min-packets", 50, "skip streams with fewer packets")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("missing -i input pcap")
	}
	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	a := zoomlens.NewAnalyzer(zoomlens.Config{ZoomNetworks: zoomlens.DefaultZoomNetworks()})
	if err := a.ReadPCAP(f); err != nil {
		log.Fatal(err)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	header := true
	var rows int
	for _, id := range a.StreamIDs() {
		sm, _ := a.MetricsFor(id)
		if sm.Packets < *minPkts {
			continue
		}
		rs := features.Extract(id.Key.SSRC, id.Key.Type, sm)
		if err := features.WriteCSV(w, rs, header); err != nil {
			log.Fatal(err)
		}
		header = false
		rows += len(rs)
	}
	log.Printf("wrote %d feature rows", rows)
}
