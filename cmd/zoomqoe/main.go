// Command zoomqoe computes per-stream performance time series (§5) from
// a Zoom pcap and prints them as CSV: media bit rate, frame rate (both
// methods), frame size, frame delay, and frame-level jitter per second,
// plus RTT samples from stream-copy matching.
//
// Usage:
//
//	zoomqoe -i zoom.pcap [-ssrc N] [-what series|rtt|loss] [-workers N]
//
// Input, engine sizing, bounded-state, and live-observability flags are
// the shared driver's (internal/engine): -i (use "-" for stdin),
// -workers, -max-flows, -max-streams, -flow-ttl, -quarantine,
// -metrics-addr, -snapshot-interval, -snapshot-out, -trace. None of the
// observability flags changes the final report.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"zoomlens"
	"zoomlens/internal/engine"
	"zoomlens/internal/metrics"
	"zoomlens/internal/rtcproto"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoomqoe: ")
	var (
		ssrc = flag.Uint64("ssrc", 0, "restrict to one SSRC (0 = all)")
		what = flag.String("what", "series", "output: series | rtt | loss | talk | clock")
	)
	ef := engine.Register(flag.CommandLine)
	flag.Parse()

	run, err := ef.Run(zoomlens.DefaultZoomNetworks())
	if err != nil {
		log.Fatal(err)
	}
	defer run.Close()
	defer run.EmitStatus()
	defer run.Stage("report")()
	a := run.Analyzer

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	switch *what {
	case "series":
		w.Write([]string{"ssrc", "proto", "type", "flow", "second", "media_kbps", "fps_delivered", "fps_encoder", "mean_frame_bytes", "jitter_ms"})
		for _, id := range a.StreamIDs() {
			if *ssrc != 0 && uint64(id.Key.SSRC) != *ssrc {
				continue
			}
			sm, _ := a.MetricsFor(id)
			if sm.Packets == 0 {
				continue
			}
			origin := sm.MediaRate.Samples
			if len(origin) == 0 {
				continue
			}
			start := origin[0].Time
			rate := sm.MediaRate.Bin(start, time.Second, "mean")
			fps := index(sm.FrameRate.Bin(start, time.Second, "last"))
			enc := index(sm.EncoderRate.Bin(start, time.Second, "mean"))
			size := index(sm.FrameSize.Bin(start, time.Second, "mean"))
			jit := index(sm.JitterMS.Bin(start, time.Second, "mean"))
			for _, s := range rate {
				sec := s.Time.Unix()
				w.Write([]string{
					strconv.FormatUint(uint64(id.Key.SSRC), 10),
					rtcproto.NameOf(id.Key.Proto),
					id.Key.Type.String(),
					id.Flow.String(),
					s.Time.Format("15:04:05"),
					fmt.Sprintf("%.1f", s.Value/1000),
					fmt.Sprintf("%.1f", fps[sec]),
					fmt.Sprintf("%.1f", enc[sec]),
					fmt.Sprintf("%.0f", size[sec]),
					fmt.Sprintf("%.2f", jit[sec]),
				})
			}
		}
	case "rtt":
		w.Write([]string{"time", "rtt_ms", "unified_stream"})
		for _, s := range a.Copies.Samples {
			w.Write([]string{
				s.Time.Format("15:04:05.000"),
				fmt.Sprintf("%.2f", float64(s.RTT)/1e6),
				strconv.Itoa(int(s.Unified)),
			})
		}
	case "loss":
		// The frame-delay retransmission heuristic (§5.5/§8) needs a
		// path RTT; use the mean of the copy-matcher samples when
		// available.
		var rtt time.Duration
		if n := len(a.Copies.Samples); n > 0 {
			var sum time.Duration
			for _, s := range a.Copies.Samples {
				sum += s.RTT
			}
			rtt = sum / time.Duration(n)
		}
		w.Write([]string{"ssrc", "proto", "type", "flow", "received", "expected_span", "lost", "duplicates", "reordered", "suspected_retx_frames", "strong_retx_frames"})
		for _, id := range a.StreamIDs() {
			sm, _ := a.MetricsFor(id)
			ls := sm.LossStats()
			est := sm.EstimateRetransmissions(rtt)
			w.Write([]string{
				strconv.FormatUint(uint64(id.Key.SSRC), 10),
				rtcproto.NameOf(id.Key.Proto),
				id.Key.Type.String(),
				id.Flow.String(),
				strconv.FormatUint(ls.Received, 10),
				strconv.FormatUint(ls.ExpectedSpan, 10),
				strconv.FormatUint(ls.EstimatedLost, 10),
				strconv.FormatUint(ls.Duplicates, 10),
				strconv.FormatUint(ls.Reordered, 10),
				strconv.Itoa(est.SuspectedRetxFrames),
				strconv.Itoa(est.StrongRetxFrames),
			})
		}
	case "talk":
		w.Write([]string{"ssrc", "flow", "mode_known", "speaking_s", "observed_s", "fraction", "segments"})
		for _, id := range a.StreamIDs() {
			if *ssrc != 0 && uint64(id.Key.SSRC) != *ssrc {
				continue
			}
			sm, _ := a.MetricsFor(id)
			if sm.Talk == nil {
				continue
			}
			st := sm.Talk.Stats()
			w.Write([]string{
				strconv.FormatUint(uint64(id.Key.SSRC), 10),
				id.Flow.String(),
				strconv.FormatBool(st.ModeKnown),
				fmt.Sprintf("%.1f", st.Speaking.Seconds()),
				fmt.Sprintf("%.1f", st.Observed.Seconds()),
				fmt.Sprintf("%.3f", st.SpeakingFraction),
				strconv.Itoa(st.Segments),
			})
		}
	case "clock":
		w.Write([]string{"ssrc", "type", "flow", "clock_hz", "rel_err", "frames"})
		for _, id := range a.StreamIDs() {
			sm, _ := a.MetricsFor(id)
			est, ok := metrics.InferClockRate(sm.FrameObservations())
			if !ok {
				continue
			}
			w.Write([]string{
				strconv.FormatUint(uint64(id.Key.SSRC), 10),
				id.Key.Type.String(),
				id.Flow.String(),
				fmt.Sprintf("%.0f", est.ClockRate),
				fmt.Sprintf("%.4f", est.Error),
				strconv.Itoa(est.Frames),
			})
		}
	default:
		log.Fatalf("unknown -what %q", *what)
	}
}

func index(samples []zoomlens.Sample) map[int64]float64 {
	out := make(map[int64]float64, len(samples))
	for _, s := range samples {
		out[s.Time.Unix()] = s.Value
	}
	return out
}
