// Command zoomqoe computes per-stream performance time series (§5) from
// a Zoom pcap and prints them as CSV: media bit rate, frame rate (both
// methods), frame size, frame delay, and frame-level jitter per second,
// plus RTT samples from stream-copy matching.
//
// Usage:
//
//	zoomqoe -i zoom.pcap [-ssrc N] [-what series|rtt|loss] [-workers N]
//
// Live observability (all optional, none changes the final report):
// -metrics-addr serves Prometheus metrics, expvar, and pprof while the
// capture streams through; -snapshot-interval emits per-meeting QoE
// snapshots as JSON lines on the capture clock; -trace prints a
// per-stage timing report at exit.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"zoomlens"
	"zoomlens/internal/cliobs"
	"zoomlens/internal/metrics"
	"zoomlens/internal/pcap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoomqoe: ")
	var (
		in         = flag.String("i", "", "input pcap path")
		ssrc       = flag.Uint64("ssrc", 0, "restrict to one SSRC (0 = all)")
		what       = flag.String("what", "series", "output: series | rtt | loss | talk | clock")
		workers    = flag.Int("workers", 1, "analysis shards: 1 = sequential, 0 = one per CPU")
		maxFlows   = flag.Int("max-flows", 0, "cap concurrent flow-table entries; packets refused at the cap are counted (0 = unlimited)")
		maxStreams = flag.Int("max-streams", 0, "cap concurrent media-stream records (0 = unlimited)")
		flowTTL    = flag.Duration("flow-ttl", 0, "evict per-flow state idle longer than this, folding it into the report (0 = never)")
		quarPath   = flag.String("quarantine", "", "write frames whose processing panicked to this pcap for offline dissection")
	)
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()
	if *in == "" {
		log.Fatal("missing -i input pcap")
	}
	var f *os.File
	if *in == "-" {
		f = os.Stdin
	} else {
		var err error
		f, err = os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
	}
	setup, err := obsFlags.Apply()
	if err != nil {
		log.Fatal(err)
	}
	defer setup.Close()
	cfg := zoomlens.Config{
		ZoomNetworks: zoomlens.DefaultZoomNetworks(),
		MaxFlows:     *maxFlows,
		MaxStreams:   *maxStreams,
		FlowTTL:      *flowTTL,
		Obs:          setup.Registry,
		Tracer:       setup.Tracer,
	}
	var quarantine *zoomlens.Quarantine
	if *quarPath != "" {
		quarantine = zoomlens.NewQuarantine(0)
		cfg.Quarantine = quarantine
	}
	// The parallel analyzer produces byte-identical results at any worker
	// count (workers == 1 is the plain sequential analyzer).
	pa := zoomlens.NewParallelAnalyzer(cfg, *workers)

	// SIGINT/SIGTERM does not kill the run: the read loop stops, every
	// packet seen so far is finalized, and the report below goes out
	// marked partial. A capture cut mid-record degrades the same way.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stream, err := pcap.OpenStream(f)
	if err != nil {
		log.Fatal(err)
	}
	// Periodic QoE snapshots fire on the capture clock, so offline
	// replays emit exactly what a live tap would have.
	sw := obsFlags.SnapshotWriter(setup, pa.Snapshot)
	var lastTS time.Time
	interrupted := false
	ingestDone := setup.Stage("ingest")
readLoop:
	for {
		select {
		case <-sig:
			interrupted = true
			break readLoop
		default:
		}
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		pa.Packet(rec.Timestamp, rec.Data)
		lastTS = rec.Timestamp
		sw.Tick(rec.Timestamp)
	}
	ingestDone()
	select {
	case <-sig:
		interrupted = true
	default:
	}
	signal.Stop(sig)
	pa.Finish()
	if !lastTS.IsZero() {
		sw.Flush(lastTS)
	}
	if err := sw.Err(); err != nil {
		log.Printf("snapshots: %v", err)
	}
	a := pa.Result()
	if stream.Truncated() {
		a.Truncated = true
	}
	defer emitStatus(a, interrupted, quarantine, *quarPath)

	defer setup.Stage("report")()
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	switch *what {
	case "series":
		w.Write([]string{"ssrc", "type", "flow", "second", "media_kbps", "fps_delivered", "fps_encoder", "mean_frame_bytes", "jitter_ms"})
		for _, id := range a.StreamIDs() {
			if *ssrc != 0 && uint64(id.Key.SSRC) != *ssrc {
				continue
			}
			sm, _ := a.MetricsFor(id)
			if sm.Packets == 0 {
				continue
			}
			origin := sm.MediaRate.Samples
			if len(origin) == 0 {
				continue
			}
			start := origin[0].Time
			rate := sm.MediaRate.Bin(start, time.Second, "mean")
			fps := index(sm.FrameRate.Bin(start, time.Second, "last"))
			enc := index(sm.EncoderRate.Bin(start, time.Second, "mean"))
			size := index(sm.FrameSize.Bin(start, time.Second, "mean"))
			jit := index(sm.JitterMS.Bin(start, time.Second, "mean"))
			for _, s := range rate {
				sec := s.Time.Unix()
				w.Write([]string{
					strconv.FormatUint(uint64(id.Key.SSRC), 10),
					id.Key.Type.String(),
					id.Flow.String(),
					s.Time.Format("15:04:05"),
					fmt.Sprintf("%.1f", s.Value/1000),
					fmt.Sprintf("%.1f", fps[sec]),
					fmt.Sprintf("%.1f", enc[sec]),
					fmt.Sprintf("%.0f", size[sec]),
					fmt.Sprintf("%.2f", jit[sec]),
				})
			}
		}
	case "rtt":
		w.Write([]string{"time", "rtt_ms", "unified_stream"})
		for _, s := range a.Copies.Samples {
			w.Write([]string{
				s.Time.Format("15:04:05.000"),
				fmt.Sprintf("%.2f", float64(s.RTT)/1e6),
				strconv.Itoa(int(s.Unified)),
			})
		}
	case "loss":
		// The frame-delay retransmission heuristic (§5.5/§8) needs a
		// path RTT; use the mean of the copy-matcher samples when
		// available.
		var rtt time.Duration
		if n := len(a.Copies.Samples); n > 0 {
			var sum time.Duration
			for _, s := range a.Copies.Samples {
				sum += s.RTT
			}
			rtt = sum / time.Duration(n)
		}
		w.Write([]string{"ssrc", "type", "flow", "received", "expected_span", "lost", "duplicates", "reordered", "suspected_retx_frames", "strong_retx_frames"})
		for _, id := range a.StreamIDs() {
			sm, _ := a.MetricsFor(id)
			ls := sm.LossStats()
			est := sm.EstimateRetransmissions(rtt)
			w.Write([]string{
				strconv.FormatUint(uint64(id.Key.SSRC), 10),
				id.Key.Type.String(),
				id.Flow.String(),
				strconv.FormatUint(ls.Received, 10),
				strconv.FormatUint(ls.ExpectedSpan, 10),
				strconv.FormatUint(ls.EstimatedLost, 10),
				strconv.FormatUint(ls.Duplicates, 10),
				strconv.FormatUint(ls.Reordered, 10),
				strconv.Itoa(est.SuspectedRetxFrames),
				strconv.Itoa(est.StrongRetxFrames),
			})
		}
	case "talk":
		w.Write([]string{"ssrc", "flow", "mode_known", "speaking_s", "observed_s", "fraction", "segments"})
		for _, id := range a.StreamIDs() {
			if *ssrc != 0 && uint64(id.Key.SSRC) != *ssrc {
				continue
			}
			sm, _ := a.MetricsFor(id)
			if sm.Talk == nil {
				continue
			}
			st := sm.Talk.Stats()
			w.Write([]string{
				strconv.FormatUint(uint64(id.Key.SSRC), 10),
				id.Flow.String(),
				strconv.FormatBool(st.ModeKnown),
				fmt.Sprintf("%.1f", st.Speaking.Seconds()),
				fmt.Sprintf("%.1f", st.Observed.Seconds()),
				fmt.Sprintf("%.3f", st.SpeakingFraction),
				strconv.Itoa(st.Segments),
			})
		}
	case "clock":
		w.Write([]string{"ssrc", "type", "flow", "clock_hz", "rel_err", "frames"})
		for _, id := range a.StreamIDs() {
			sm, _ := a.MetricsFor(id)
			est, ok := metrics.InferClockRate(sm.FrameObservations())
			if !ok {
				continue
			}
			w.Write([]string{
				strconv.FormatUint(uint64(id.Key.SSRC), 10),
				id.Key.Type.String(),
				id.Flow.String(),
				fmt.Sprintf("%.0f", est.ClockRate),
				fmt.Sprintf("%.4f", est.Error),
				strconv.Itoa(est.Frames),
			})
		}
	default:
		log.Fatalf("unknown -what %q", *what)
	}
}

func index(samples []zoomlens.Sample) map[int64]float64 {
	out := make(map[int64]float64, len(samples))
	for _, s := range samples {
		out[s.Time.Unix()] = s.Value
	}
	return out
}

// emitStatus prints one JSON object on stderr describing how the run
// ended: whether the report is partial (interrupted or truncated input)
// and the hardening counters an operator needs to trust it. It also
// flushes the panic quarantine when one was requested.
func emitStatus(a *zoomlens.Analyzer, interrupted bool, quarantine *zoomlens.Quarantine, quarPath string) {
	s := a.Summary()
	reason := ""
	switch {
	case interrupted:
		reason = "interrupted"
	case s.Truncated:
		reason = "truncated_capture"
	}
	var quarantined uint64
	if quarantine != nil {
		quarantined = quarantine.Total()
		if quarantined > 0 {
			qf, err := os.Create(quarPath)
			if err != nil {
				log.Print(err)
			} else {
				if err := quarantine.WritePCAP(qf); err != nil {
					log.Print(err)
				}
				qf.Close()
			}
		}
	}
	fmt.Fprintf(os.Stderr,
		`{"partial":%t,"reason":%q,"packets":%d,"flows":%d,"streams":%d,"evicted_flows":%d,"evicted_streams":%d,"rejected_packets":%d,"panics_recovered":%d,"quarantined":%d,"truncated":%t}`+"\n",
		interrupted || s.Truncated, reason, s.Packets, s.Flows, s.Streams,
		s.EvictedFlows, s.EvictedStreams, s.RejectedPackets, s.PanicsRecovered, quarantined, s.Truncated)
}
