// Command zoomagg is the cluster aggregator: it folds a zoomsplit →
// worker-fleet run back into one meeting-level view.
//
// The primary mode merges worker engine states and observation logs
// into a single sequential-equivalent analyzer — byte-identical to one
// engine having read the whole capture:
//
//	zoomagg -cluster-merge sp-000,sp-001 -manifest sp.manifest.json \
//	        -checkpoint-out merged.zlcp -summary
//
// Each -cluster-merge prefix names a worker's <prefix>.state.zlcp
// shutdown checkpoint and <prefix>.obs observation log; -obs adds extra
// logs (a migrated worker's first life). -checkpoint-out writes the
// merged pre-Finish state as an ordinary checkpoint, so any reporting
// tool can render the merged report: zoomqoe -restore merged.zlcp …
//
// Operational roll-ups (independent of the byte-identical path):
//
//	zoomagg -status  sp-000.status.json,sp-001.status.json
//	zoomagg -metrics m0.prom,m1.prom
//	zoomagg -windows w0,w1 -windows-out merged-window
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"zoomlens"
	"zoomlens/internal/cluster"
	"zoomlens/internal/cluster/agg"
	"zoomlens/internal/core"
	"zoomlens/internal/engine"
	"zoomlens/internal/features"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoomagg: ")
	var (
		merge      = flag.String("cluster-merge", "", "comma-separated worker prefixes; each names <prefix>.state.zlcp and <prefix>.obs")
		extraObs   = flag.String("obs", "", "comma-separated extra observation logs (e.g. a migrated worker's first life)")
		manifest   = flag.String("manifest", "", "splitter manifest path (required with -cluster-merge)")
		ckOut      = flag.String("checkpoint-out", "", "write the merged pre-Finish engine state to this checkpoint path")
		summary    = flag.Bool("summary", false, "finish the merged engine and print its summary JSON on stdout")
		status     = flag.String("status", "", "comma-separated worker status JSON files to merge onto stdout")
		metricsIn  = flag.String("metrics", "", "comma-separated Prometheus text dumps to merge onto stdout")
		windows    = flag.String("windows", "", "comma-separated worker -rotate-out prefixes whose window files to merge")
		windowsOut = flag.String("windows-out", "zoomagg-window", "output prefix for merged window files (with -windows)")
		featOut    = flag.String("features", "", "with -cluster-merge: write the merged run's streaming feature rows as versioned CSV to this path (\"-\" = stdout); rows are byte-identical to a single engine reading the whole capture")
		featWindow = flag.Duration("feature-window", time.Second, "feature aggregation window for -features")
	)
	flag.Parse()

	did := false
	if *merge != "" {
		did = true
		if *manifest == "" {
			log.Fatal("-cluster-merge requires -manifest")
		}
		if *ckOut == "" && !*summary && *featOut == "" {
			log.Fatal("-cluster-merge needs at least one output: -checkpoint-out, -summary, and/or -features")
		}
		man, err := cluster.ReadManifest(*manifest)
		if err != nil {
			log.Fatal(err)
		}
		prefixes := splitList(*merge)
		states := make([]string, 0, len(prefixes))
		obsPaths := make([]string, 0, len(prefixes))
		for _, p := range prefixes {
			states = append(states, p+".state.zlcp")
			obsPaths = append(obsPaths, p+".obs")
		}
		obsPaths = append(obsPaths, splitList(*extraObs)...)
		cfg := core.Config{ZoomNetworks: zoomlens.DefaultZoomNetworks()}
		if *featOut != "" {
			// The replayed observation logs feed the aggregator's windower,
			// so the merged feature rows match a single-engine run with the
			// same window.
			fw := *featWindow
			if fw <= 0 {
				fw = time.Second
			}
			cfg.FeatureWindow = fw
		}
		merged, err := agg.Aggregate(cfg, man, states, obsPaths)
		if err != nil {
			log.Fatal(err)
		}
		// The checkpoint must capture the pre-Finish state — that is what
		// keeps it restorable as a live engine (and what -restore expects).
		if *ckOut != "" {
			ck := engine.NewCheckpointer(*ckOut, 1, false, nil)
			if err := ck.WriteFull(merged); err != nil {
				log.Fatal(err)
			}
		}
		if *summary || *featOut != "" {
			merged.Finish()
		}
		if *summary {
			data, err := json.MarshalIndent(merged.Summary(), "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(string(data))
		}
		if *featOut != "" {
			rows := merged.DrainFeatures()
			out := os.Stdout
			if *featOut != "-" {
				out, err = os.Create(*featOut)
				if err != nil {
					log.Fatal(err)
				}
			}
			if err := features.WriteCSV(out, rows); err != nil {
				log.Fatal(err)
			}
			if out != os.Stdout {
				if err := out.Close(); err != nil {
					log.Fatal(err)
				}
			}
			log.Printf("wrote %d feature rows", len(rows))
		}
	}
	if *status != "" {
		did = true
		files := splitList(*status)
		lines := make([][]byte, 0, len(files))
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				log.Fatal(err)
			}
			lines = append(lines, data)
		}
		out, err := agg.MergeStatus(lines)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
	}
	if *metricsIn != "" {
		did = true
		files := splitList(*metricsIn)
		dumps := make([]string, 0, len(files))
		for _, f := range files {
			data, err := os.ReadFile(f)
			if err != nil {
				log.Fatal(err)
			}
			dumps = append(dumps, string(data))
		}
		fmt.Print(agg.MergeProm(dumps))
	}
	if *windows != "" {
		did = true
		n, err := agg.MergeWindowFiles(splitList(*windows), *windowsOut)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("merged %d window(s) under %s", n, *windowsOut)
	}
	if !did {
		log.Fatal("nothing to do: give -cluster-merge, -status, -metrics, or -windows")
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
