// Command zoomsplit is the cluster splitter: it reads one capture,
// classifies every frame with the same dispatch path a single engine
// uses (raw scan → stateful capture filter → FNV-1a flow hash), and
// fans the kept frames out whole to N worker streams as pcapng,
// stamping each frame with its global capture sequence number
// (epb_packetid). A worker is an ordinary zoomqoe process reading one
// stream with -cluster-part; zoomagg folds the workers back together.
//
// Output modes (mutually exclusive):
//
//	zoomsplit -i zoom.pcap -n 4 -out sp                 # files sp-000.pcapng … sp-003.pcapng
//	zoomsplit -i zoom.pcap -n 4 -exec 'zoomqoe -i - …'  # one child per worker, fed on stdin
//	zoomsplit -i - -n 2 -connect h1:9000,h2:9000        # pcapng over TCP
//
// The manifest (default <out>.manifest.json) carries the splitter-side
// head counters the aggregator needs to reproduce a single engine's
// accounting byte-for-byte.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/exec"
	"strings"

	"zoomlens"
	"zoomlens/internal/cluster"
	"zoomlens/internal/core"
	"zoomlens/internal/engine"
	"zoomlens/internal/pcap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoomsplit: ")
	var (
		input    = flag.String("i", "", `input pcap/pcapng path ("-" = stdin)`)
		n        = flag.Int("n", 2, "worker fan-out width")
		out      = flag.String("out", "", "write worker i's stream to <out>-00i.pcapng")
		execCmd  = flag.String("exec", "", "spawn this shell command once per worker and feed its stdin (ZOOMSPLIT_WORKER=i in the child's env)")
		connect  = flag.String("connect", "", "comma-separated host:port list, one TCP destination per worker")
		cut      = flag.Uint64("cut", 0, "after this many input packets, rotate every worker stream to <out>-00i.1.pcapng — the drain point of a checkpoint-based worker migration (-out only)")
		manifest = flag.String("manifest", "", `manifest path (default <out>.manifest.json, or "-" for stdout)`)
	)
	flag.Parse()
	if *input == "" {
		log.Fatal("missing -i input capture")
	}
	modes := 0
	for _, set := range []bool{*out != "", *execCmd != "", *connect != ""} {
		if set {
			modes++
		}
	}
	if modes != 1 {
		log.Fatal("exactly one of -out, -exec, -connect must be given")
	}
	if *cut > 0 && *out == "" {
		log.Fatal("-cut requires -out (file streams are the only rotatable outputs)")
	}
	if *n < 1 {
		log.Fatal("-n must be at least 1")
	}

	src, err := engine.Open(*input)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()

	sp := cluster.NewSplitter(core.Config{ZoomNetworks: zoomlens.DefaultZoomNetworks()}, *n)

	// Build the worker sinks. closers tears them down in order; cmds is
	// non-nil only in -exec mode (children to wait for after EOF).
	sinks := make([]io.WriteCloser, *n)
	var cmds []*exec.Cmd
	switch {
	case *out != "":
		for i := 0; i < *n; i++ {
			f, err := os.Create(fmt.Sprintf("%s-%03d.pcapng", *out, i))
			if err != nil {
				log.Fatal(err)
			}
			sinks[i] = f
		}
	case *execCmd != "":
		for i := 0; i < *n; i++ {
			cmd := exec.Command("/bin/sh", "-c", *execCmd)
			cmd.Env = append(os.Environ(), fmt.Sprintf("ZOOMSPLIT_WORKER=%d", i))
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			stdin, err := cmd.StdinPipe()
			if err != nil {
				log.Fatal(err)
			}
			if err := cmd.Start(); err != nil {
				log.Fatal(err)
			}
			sinks[i] = stdin
			cmds = append(cmds, cmd)
		}
	default:
		addrs := strings.Split(*connect, ",")
		if len(addrs) != *n {
			log.Fatalf("-connect lists %d destination(s) for -n %d workers", len(addrs), *n)
		}
		for i, addr := range addrs {
			c, err := net.Dial("tcp", strings.TrimSpace(addr))
			if err != nil {
				log.Fatal(err)
			}
			sinks[i] = c
		}
	}
	for i, w := range sinks {
		if err := sp.Attach(i, w); err != nil {
			log.Fatal(err)
		}
	}

	var rec pcap.Record
	var seen uint64
	rotated := false
	for {
		err := src.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		// Rotate every worker stream at the cut point, before feeding the
		// first post-cut packet: the splitter's filter state and global
		// sequence numbering carry straight across the boundary.
		if *cut > 0 && !rotated && seen == *cut {
			rotated = true
			for i := 0; i < *n; i++ {
				if err := sinks[i].Close(); err != nil {
					log.Fatal(err)
				}
				f, err := os.Create(fmt.Sprintf("%s-%03d.1.pcapng", *out, i))
				if err != nil {
					log.Fatal(err)
				}
				sinks[i] = f
				if err := sp.Attach(i, f); err != nil {
					log.Fatal(err)
				}
			}
		}
		seen++
		if err := sp.Packet(rec.Timestamp, rec.Data); err != nil {
			log.Fatal(err)
		}
	}
	for _, w := range sinks {
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
	}

	m := sp.Manifest(src.Truncated())
	mpath := *manifest
	if mpath == "" {
		if *out != "" {
			mpath = *out + ".manifest.json"
		} else {
			mpath = "-"
		}
	}
	if mpath == "-" {
		enc, err := cluster.MarshalManifest(m)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(enc)
	} else if err := cluster.WriteManifest(mpath, m); err != nil {
		log.Fatal(err)
	}
	log.Printf("split %d packets (%d kept) across %d workers", m.Packets, keptTotal(m), *n)

	// In -exec mode the children see EOF on stdin once the pipes close;
	// wait for them and propagate failure.
	failed := false
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			log.Printf("worker %d: %v", i, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func keptTotal(m cluster.Manifest) uint64 {
	var t uint64
	for _, k := range m.KeptPerWorker {
		t += k
	}
	return t
}
