// Command zoomsim synthesizes Zoom traffic into a pcap file: either a
// controlled two-party experiment (like the paper's §5 validation runs)
// or a campus-scale day (§6). The output is byte-exact Zoom wire format
// and can be fed to zoomcap, zoomflows, zoomqoe, zoomdissect, or any
// pcap tool.
//
// Usage:
//
//	zoomsim -o meeting.pcap -mode meeting -duration 2m [-p2p] [-congest]
//	zoomsim -o campus.pcap  -mode campus  -duration 30m -rate 12
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"zoomlens"
	"zoomlens/internal/cliobs"
	"zoomlens/internal/netsim"
	"zoomlens/internal/pcap"
	"zoomlens/internal/qos"
	"zoomlens/internal/sim"
	"zoomlens/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoomsim: ")
	var (
		out      = flag.String("o", "zoom.pcap", "output pcap path")
		mode     = flag.String("mode", "meeting", "workload: meeting | campus")
		duration = flag.Duration("duration", 2*time.Minute, "simulated duration")
		seed     = flag.Int64("seed", 1, "random seed")
		app      = flag.String("app", "zoom", "meeting mode: application to simulate: zoom | webrtc")
		p2p      = flag.Bool("p2p", false, "meeting mode: enable the P2P switch (second peer off campus)")
		congest  = flag.Bool("congest", false, "meeting mode: inject two cross-traffic episodes")
		screen   = flag.Bool("screen", false, "meeting mode: first participant shares a screen")
		rate     = flag.Float64("rate", 12, "campus mode: peak meetings per hour")
		bgPPS    = flag.Float64("bg", 400, "campus mode: background packet rate")
		webrtcFr = flag.Float64("webrtc-frac", 0, "campus mode: fraction of meetings run over the standards WebRTC app instead of Zoom (0 keeps the trace byte-identical to earlier versions)")
		format   = flag.String("format", "pcap", "output format: pcap | pcapng")
		qosOut   = flag.String("qos-out", "", "meeting mode: write the clients' ground-truth QoS series (the SDK view) to this path for training/labeling")
	)
	obsFlags := cliobs.RegisterMetrics(flag.CommandLine)
	flag.Parse()

	setup, err := obsFlags.Apply()
	if err != nil {
		log.Fatal(err)
	}
	defer setup.Close()
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var write func(time.Time, []byte) error
	switch *format {
	case "pcap":
		w, err := pcap.NewWriter(f, pcap.WriterOptions{Nanosecond: true})
		if err != nil {
			log.Fatal(err)
		}
		write = w.WriteRecord
	case "pcapng":
		w, err := pcap.NewNGWriter(f, uint16(pcap.LinkTypeEthernet))
		if err != nil {
			log.Fatal(err)
		}
		write = w.WriteRecord
	default:
		log.Fatalf("unknown -format %q", *format)
	}
	var packets, bytes int64
	var pktC, byteC *zoomlens.MetricCounter
	if setup.Registry != nil {
		pktC = setup.Registry.Counter("zoomsim_packets_total", "frames generated onto the simulated monitor link")
		byteC = setup.Registry.Counter("zoomsim_bytes_total", "wire bytes generated onto the simulated monitor link")
	}
	monitor := func(at time.Time, frame []byte) {
		if err := write(at, frame); err != nil {
			log.Fatal(err)
		}
		packets++
		bytes += int64(len(frame))
		if pktC != nil && packets%1024 == 0 {
			pktC.Store(uint64(packets))
			byteC.Store(uint64(bytes))
		}
	}

	simDone := setup.Stage("simulate")
	switch *mode {
	case "meeting":
		opts := sim.DefaultOptions()
		opts.Seed = *seed
		world := sim.NewWorld(opts)
		world.Monitor = monitor
		var m *sim.Meeting
		switch *app {
		case "zoom":
			m = world.NewMeeting()
		case "webrtc":
			m = world.NewWebRTCMeeting()
		default:
			log.Fatalf("unknown -app %q", *app)
		}
		if *p2p {
			if *app == "webrtc" {
				log.Fatal("-p2p models Zoom's direct-connection switch; not available with -app webrtc")
			}
			m.EnableP2P(10 * time.Second)
		}
		set := sim.DefaultMediaSet()
		a := world.NewClient("alice", true)
		b := world.NewClient("bob", !*p2p) // P2P peer sits off campus so media crosses the monitor
		if *screen {
			set.Screen = true
		}
		m.Join(a, set)
		m.Join(b, sim.DefaultMediaSet())
		if *congest {
			d := *duration
			world.WanDown.Episodes = append(world.WanDown.Episodes,
				netsim.Congestion{Start: opts.Start.Add(d / 4), End: opts.Start.Add(d/4 + 15*time.Second), ExtraDelay: 25 * time.Millisecond, ExtraJitter: 35 * time.Millisecond, LossRate: 0.02},
				netsim.Congestion{Start: opts.Start.Add(2 * d / 3), End: opts.Start.Add(2*d/3 + 20*time.Second), ExtraDelay: 35 * time.Millisecond, ExtraJitter: 45 * time.Millisecond, LossRate: 0.03},
			)
		}
		world.Run(opts.Start.Add(*duration))
		if *qosOut != "" {
			clients := make(map[string][]qos.Entry)
			for _, c := range []*sim.Client{a, b} {
				if rec := c.QoS(); rec != nil {
					clients[rec.Name] = rec.Entries
				}
			}
			qf, err := os.Create(*qosOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := qos.WriteLog(qf, clients); err != nil {
				log.Fatal(err)
			}
			if err := qf.Close(); err != nil {
				log.Fatal(err)
			}
		}
	case "campus":
		if *qosOut != "" {
			log.Fatal("-qos-out records the per-client SDK series; only available in meeting mode")
		}
		cfg := zoomlens.DefaultCampusConfig()
		cfg.Seed = *seed
		cfg.Duration = *duration
		cfg.MeetingsPerHourPeak = *rate
		cfg.BackgroundPPS = *bgPPS
		cfg.WebRTCFraction = *webrtcFr
		opts := sim.DefaultOptions()
		opts.Seed = *seed
		opts.Start = cfg.Start
		opts.SkipExternalDelivery = true
		world := sim.NewWorld(opts)
		world.Monitor = monitor
		r := trace.NewRunner(cfg, world)
		plans := trace.Schedule(cfg)
		r.Install(plans)
		fmt.Printf("scheduled %d meetings over %s\n", len(plans), cfg.Duration)
		world.Run(cfg.Start.Add(cfg.Duration))
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	simDone()
	if pktC != nil {
		pktC.Store(uint64(packets))
		byteC.Store(uint64(bytes))
	}
	fmt.Printf("wrote %d packets (%d bytes) to %s\n", packets, bytes, *out)
}
