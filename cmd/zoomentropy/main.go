// Command zoomentropy runs the §4.2.1 entropy-based header analysis over
// the UDP payloads of one flow in a pcap: it classifies 1/2/4-byte value
// sequences at every offset (random / identifier / counter / constant)
// and searches for RTP header signatures — the methodology behind
// Figures 3–5 and the blueprint the paper offers for reverse engineering
// other proprietary protocols.
//
// Usage:
//
//	zoomentropy -i zoom.pcap [-port 8801] [-max-offset 64]
//
// The input may be classic pcap or pcapng, and "-i -" reads from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"

	"zoomlens"
	"zoomlens/internal/engine"
	"zoomlens/internal/entropy"
	"zoomlens/internal/layers"
	"zoomlens/internal/pcap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoomentropy: ")
	var (
		in        = flag.String("i", "", "input pcap path (\"-\" = stdin)")
		dstPort   = flag.Uint("port", 8801, "restrict to UDP payloads with this destination port")
		maxOffset = flag.Int("max-offset", 64, "largest payload offset to analyze")
		plot      = flag.String("plot", "", "render an ASCII scatter of one slot, as \"offset:width\" (e.g. 34:2)")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("missing -i input pcap")
	}
	// Validate -plot up front: the extractor supports only these widths
	// and would panic on anything else, and failing after the sweep has
	// already printed wastes the run.
	var plotOff, plotWidth int
	if *plot != "" {
		if _, err := fmt.Sscanf(*plot, "%d:%d", &plotOff, &plotWidth); err != nil {
			log.Fatalf("bad -plot %q: want offset:width", *plot)
		}
		if plotWidth != 1 && plotWidth != 2 && plotWidth != 4 {
			log.Fatalf("bad -plot %q: width must be 1, 2, or 4", *plot)
		}
		if plotOff < 0 {
			log.Fatalf("bad -plot %q: offset must be non-negative", *plot)
		}
	}
	src, err := engine.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()

	// Collect payloads of the first matching flow (the paper analyzes one
	// UDP flow at a time). Records are borrowed, so matching payloads are
	// copied before the next read.
	var payloads [][]byte
	var lockSrc uint16
	parser := &layers.Parser{}
	var pkt layers.Packet
	var rec pcap.Record
	for {
		err := src.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if parser.Parse(rec.Data, &pkt) != nil || !pkt.HasUDP {
			continue
		}
		if pkt.UDP.DstPort != uint16(*dstPort) {
			continue
		}
		if lockSrc == 0 {
			lockSrc = pkt.UDP.SrcPort
		}
		if pkt.UDP.SrcPort != lockSrc {
			continue
		}
		cp := make([]byte, len(pkt.Payload))
		copy(cp, pkt.Payload)
		payloads = append(payloads, cp)
	}
	if len(payloads) == 0 {
		log.Fatal("no matching UDP payloads")
	}
	fmt.Printf("analyzing %d payloads of one flow (src port %d)\n\n", len(payloads), lockSrc)

	fmt.Printf("%-8s %-6s %-11s %9s %9s %9s\n", "offset", "width", "class", "entropy", "distinct", "monotone")
	for _, a := range zoomlens.EntropySweep(payloads, *maxOffset) {
		if a.Width == 1 && a.Offset%1 != 0 {
			continue
		}
		fmt.Printf("%-8d %-6d %-11s %9.3f %9.3f %9.3f\n",
			a.Offset, a.Width, a.Class, a.NormEntropy, a.DistinctRatio, a.MonotoneRatio)
	}

	if *plot != "" {
		seq := entropy.Extract(payloads, plotOff, plotWidth)
		fmt.Println()
		fmt.Print(entropy.Plot(seq, 72, 16))
	}

	sigs := zoomlens.FindRTPHeaders(payloads, *maxOffset)
	fmt.Println()
	if len(sigs) == 0 {
		fmt.Println("no RTP header signatures found")
		return
	}
	for _, s := range sigs {
		fmt.Printf("RTP signature: seq@%d ts@%d ssrc@%d — header starts at offset %d; SSRCs %v\n",
			s.Offset, s.Offset+2, s.Offset+6, s.Offset-2, s.SSRCValues)
	}
}
