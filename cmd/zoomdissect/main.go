// Command zoomdissect is the text equivalent of the paper's Wireshark
// plugin (Appendix C): it prints a per-packet field tree for Zoom
// traffic in a pcap — SFU encapsulation, media encapsulation, RTP or
// RTCP, and STUN.
//
// Usage:
//
//	zoomdissect -i zoom.pcap [-n 20] [-filter media|rtcp|stun|all]
//
// The input may be classic pcap or pcapng, and "-i -" reads from stdin
// (pipe live captures straight in: tcpdump -w - | zoomdissect -i -).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"

	"zoomlens"
	"zoomlens/internal/engine"
	"zoomlens/internal/layers"
	"zoomlens/internal/pcap"
	"zoomlens/internal/stun"
	"zoomlens/internal/zoom"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoomdissect: ")
	var (
		in        = flag.String("i", "", "input pcap path (\"-\" = stdin)")
		limit     = flag.Int("n", 20, "max packets to dissect (0 = all)")
		filter    = flag.String("filter", "all", "packet filter: media | rtcp | stun | all")
		exportLua = flag.Bool("export-lua", false, "print the generated Wireshark dissector plugin and exit")
	)
	flag.Parse()
	if *exportLua {
		fmt.Print(zoom.GenerateLuaDissector())
		return
	}
	if *in == "" {
		log.Fatal("missing -i input pcap")
	}
	src, err := engine.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()

	parser := &layers.Parser{}
	var pkt layers.Packet
	var rec pcap.Record
	shown, index := 0, 0
	for *limit == 0 || shown < *limit {
		// rec.Data borrows the reader's buffer; every field below is
		// printed before the next read, so no copy is needed.
		err := src.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		index++
		if parser.Parse(rec.Data, &pkt) != nil || !pkt.HasUDP {
			continue
		}
		if stun.Is(pkt.Payload) {
			if *filter != "all" && *filter != "stun" {
				continue
			}
			m, err := stun.Parse(pkt.Payload)
			if err != nil {
				continue
			}
			fmt.Printf("#%d %s %s:%d -> %s:%d UDP STUN\n", index, rec.Timestamp.Format("15:04:05.000000"),
				pkt.SrcAddr(), pkt.UDP.SrcPort, pkt.DstAddr(), pkt.UDP.DstPort)
			kind := "binding request"
			if m.IsBindingResponse() {
				kind = "binding success response"
			}
			fmt.Printf("    STUN %s, transaction %x\n", kind, m.TransactionID)
			if addr, ok := m.MappedAddress(); ok {
				fmt.Printf("    XOR-MAPPED-ADDRESS: %s\n", addr)
			}
			shown++
			continue
		}
		zp, err := zoomlens.ParseZoomPacket(pkt.Payload)
		if err != nil {
			continue
		}
		isMedia := zp.IsMedia()
		if *filter == "media" && !isMedia {
			continue
		}
		if *filter == "rtcp" && isMedia {
			continue
		}
		fmt.Printf("#%d %s %s:%d -> %s:%d UDP len=%d\n", index, rec.Timestamp.Format("15:04:05.000000"),
			pkt.SrcAddr(), pkt.UDP.SrcPort, pkt.DstAddr(), pkt.UDP.DstPort, len(pkt.Payload))
		if zp.ServerBased {
			dir := "to SFU"
			if zp.SFU.FromSFU() {
				dir = "from SFU"
			}
			fmt.Printf("    Zoom SFU Encapsulation: type=%d seq=%d direction=%s\n", zp.SFU.Type, zp.SFU.Sequence, dir)
		} else {
			fmt.Printf("    (P2P layout: no SFU encapsulation)\n")
		}
		fmt.Printf("    Zoom Media Encapsulation: type=%d (%s) seq=%d ts=%d", uint8(zp.Media.Type), zp.Media.Type, zp.Media.Sequence, zp.Media.Timestamp)
		if zp.Media.Type == zoom.TypeVideo {
			fmt.Printf(" frame_seq=%d pkts_in_frame=%d", zp.Media.FrameSequence, zp.Media.PacketsInFrame)
		}
		fmt.Println()
		if isMedia {
			sub := zoom.ClassifySubstream(zp.Media.Type, zp.RTP.PayloadType)
			fmt.Printf("    RTP: pt=%d (%s) seq=%d ts=%d ssrc=%d marker=%v payload=%dB\n",
				zp.RTP.PayloadType, sub, zp.RTP.SequenceNumber, zp.RTP.Timestamp, zp.RTP.SSRC, zp.RTP.Marker, len(zp.RTP.Payload))
		} else {
			for _, sr := range zp.RTCP.SenderReports {
				fmt.Printf("    RTCP SR: ssrc=%d ntp=%s rtp_ts=%d packets=%d octets=%d\n",
					sr.SSRC, sr.NTPTS.Time().Format("15:04:05.000"), sr.RTPTS, sr.PacketCount, sr.OctetCount)
			}
			if len(zp.RTCP.SDES) > 0 {
				fmt.Printf("    RTCP SDES: %d chunk(s), empty per Zoom convention\n", len(zp.RTCP.SDES))
			}
		}
		shown++
	}
}
