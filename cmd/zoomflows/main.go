// Command zoomflows extracts flows, media streams, and inferred meetings
// from a Zoom pcap and prints them as CSV, implementing §4.3's grouping
// heuristic end to end.
//
// Usage:
//
//	zoomflows -i zoom.pcap [-what streams|flows|meetings] [-workers N]
//
// Input, engine sizing, bounded-state, and live-observability flags are
// the shared driver's (internal/engine): -i (use "-" for stdin),
// -workers, -max-flows, -max-streams, -flow-ttl, -quarantine,
// -metrics-addr, -snapshot-interval, -snapshot-out, -trace. The report
// is byte-identical at any worker count, and none of the observability
// flags changes it.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"zoomlens"
	"zoomlens/internal/engine"
	"zoomlens/internal/rtcproto"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoomflows: ")
	what := flag.String("what", "streams", "output: streams | flows | meetings | reports | summary")
	ef := engine.Register(flag.CommandLine)
	flag.Parse()

	run, err := ef.Run(zoomlens.DefaultZoomNetworks())
	if err != nil {
		log.Fatal(err)
	}
	defer run.Close()
	defer run.EmitStatus()
	defer run.Stage("report")()
	a := run.Analyzer

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	switch *what {
	case "streams":
		w.Write([]string{"ssrc", "proto", "type", "flow", "first_seen", "last_seen", "packets", "media_bytes", "frames", "lost", "dups"})
		for _, id := range a.StreamIDs() {
			sm, _ := a.MetricsFor(id)
			st, _ := a.Flows.Stream(id)
			loss := sm.LossStats()
			w.Write([]string{
				strconv.FormatUint(uint64(id.Key.SSRC), 10),
				rtcproto.NameOf(id.Key.Proto),
				id.Key.Type.String(),
				id.Flow.String(),
				st.FirstSeen.Format("15:04:05.000"),
				st.LastSeen.Format("15:04:05.000"),
				strconv.FormatUint(sm.Packets, 10),
				strconv.FormatUint(sm.MediaBytes, 10),
				strconv.FormatUint(sm.FramesTotal, 10),
				strconv.FormatUint(loss.EstimatedLost, 10),
				strconv.FormatUint(loss.Duplicates, 10),
			})
		}
	case "flows":
		w.Write([]string{"flow", "first_seen", "last_seen", "packets", "bytes", "server_based", "p2p"})
		for _, fl := range a.Flows.Flows() {
			w.Write([]string{
				fl.Flow.String(),
				fl.FirstSeen.Format("15:04:05.000"),
				fl.LastSeen.Format("15:04:05.000"),
				strconv.FormatUint(fl.Packets, 10),
				strconv.FormatUint(fl.WireBytes, 10),
				strconv.FormatUint(fl.ServerBased, 10),
				strconv.FormatUint(fl.P2P, 10),
			})
		}
	case "meetings":
		w.Write([]string{"meeting", "app", "start", "end", "participants", "streams", "clients"})
		for _, m := range a.Meetings() {
			clients := ""
			for i, c := range m.Clients {
				if i > 0 {
					clients += " "
				}
				clients += c.String()
			}
			w.Write([]string{
				strconv.Itoa(m.ID),
				rtcproto.NameOf(m.Proto),
				m.Start.Format("15:04:05"),
				m.End.Format("15:04:05"),
				strconv.Itoa(m.Participants()),
				strconv.Itoa(len(m.Streams)),
				clients,
			})
		}
	case "reports":
		w.Write([]string{"meeting", "app", "client", "streams", "video_fps", "jitter_p50_ms", "loss_rate", "retx_rate", "degraded", "meeting_wide", "mean_rtt_ms"})
		for _, rep := range a.MeetingReports() {
			for _, p := range rep.Participants {
				w.Write([]string{
					strconv.Itoa(rep.Meeting.ID),
					rep.App,
					p.Client.String(),
					strconv.Itoa(p.Streams),
					fmt.Sprintf("%.1f", p.VideoFPSMean),
					fmt.Sprintf("%.2f", p.JitterP50MS),
					fmt.Sprintf("%.4f", p.LossRate),
					fmt.Sprintf("%.4f", p.RetransmissionRate),
					strconv.FormatBool(p.Degraded),
					strconv.FormatBool(rep.MeetingWideDegradation),
					fmt.Sprintf("%.1f", float64(rep.MeanRTT)/1e6),
				})
			}
		}
	case "summary":
		s := a.Summary()
		protos := ""
		for i, v := range s.ProtoDecoded {
			protos += fmt.Sprintf(" proto_decoded_%s=%d", rtcproto.NameOf(uint8(i)), v)
		}
		fmt.Printf("duration=%s packets=%d bytes=%d zoom_udp=%d tcp=%d stun=%d stun_port_nonstun=%d undecodable=%d%s flows=%d streams=%d meetings=%d evicted_flows=%d evicted_streams=%d rejected=%d panics=%d truncated=%t\n",
			s.Duration, s.Packets, s.Bytes, s.ZoomUDP, s.TCPPackets, s.STUNPackets, s.STUNPortNonSTUN, s.Undecodable, protos, s.Flows, s.Streams, s.Meetings,
			s.EvictedFlows, s.EvictedStreams, s.RejectedPackets, s.PanicsRecovered, s.Truncated)
	default:
		log.Fatalf("unknown -what %q", *what)
	}
}
