// Command zoomflows extracts flows, media streams, and inferred meetings
// from a Zoom pcap and prints them as CSV, implementing §4.3's grouping
// heuristic end to end.
//
// Usage:
//
//	zoomflows -i zoom.pcap [-what streams|flows|meetings]
//
// Live observability (all optional, none changes the final report):
// -metrics-addr serves Prometheus metrics, expvar, and pprof while the
// capture streams through; -snapshot-interval emits per-meeting QoE
// snapshots as JSON lines on the capture clock; -trace prints a
// per-stage timing report at exit.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"zoomlens"
	"zoomlens/internal/cliobs"
	"zoomlens/internal/pcap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("zoomflows: ")
	var (
		in         = flag.String("i", "", "input pcap path")
		what       = flag.String("what", "streams", "output: streams | flows | meetings | reports | summary")
		maxFlows   = flag.Int("max-flows", 0, "cap concurrent flow-table entries; packets refused at the cap are counted (0 = unlimited)")
		maxStreams = flag.Int("max-streams", 0, "cap concurrent media-stream records (0 = unlimited)")
		flowTTL    = flag.Duration("flow-ttl", 0, "evict per-flow state idle longer than this, folding it into the report (0 = never)")
		quarPath   = flag.String("quarantine", "", "write frames whose processing panicked to this pcap for offline dissection")
	)
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()
	if *in == "" {
		log.Fatal("missing -i input pcap")
	}
	var f *os.File
	if *in == "-" {
		f = os.Stdin
	} else {
		var err error
		f, err = os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
	}
	setup, err := obsFlags.Apply()
	if err != nil {
		log.Fatal(err)
	}
	defer setup.Close()

	cfg := zoomlens.Config{
		ZoomNetworks: zoomlens.DefaultZoomNetworks(),
		MaxFlows:     *maxFlows,
		MaxStreams:   *maxStreams,
		FlowTTL:      *flowTTL,
		Obs:          setup.Registry,
		Tracer:       setup.Tracer,
	}
	var quarantine *zoomlens.Quarantine
	if *quarPath != "" {
		quarantine = zoomlens.NewQuarantine(0)
		cfg.Quarantine = quarantine
	}
	a := zoomlens.NewAnalyzer(cfg)

	// SIGINT/SIGTERM stops reading and emits a valid partial report
	// instead of killing the run; a capture cut mid-record degrades the
	// same way.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	stream, err := pcap.OpenStream(f)
	if err != nil {
		log.Fatal(err)
	}
	sw := obsFlags.SnapshotWriter(setup, a.Snapshot)
	var lastTS time.Time
	interrupted := false
	ingestDone := setup.Stage("ingest")
readLoop:
	for {
		select {
		case <-sig:
			interrupted = true
			break readLoop
		default:
		}
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		a.Packet(rec.Timestamp, rec.Data)
		lastTS = rec.Timestamp
		sw.Tick(rec.Timestamp)
	}
	ingestDone()
	select {
	case <-sig:
		interrupted = true
	default:
	}
	signal.Stop(sig)
	a.Finish()
	if !lastTS.IsZero() {
		sw.Flush(lastTS)
	}
	if err := sw.Err(); err != nil {
		log.Printf("snapshots: %v", err)
	}
	if stream.Truncated() {
		a.Truncated = true
	}
	defer emitStatus(a, interrupted, quarantine, *quarPath)

	defer setup.Stage("report")()
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	switch *what {
	case "streams":
		w.Write([]string{"ssrc", "type", "flow", "first_seen", "last_seen", "packets", "media_bytes", "frames", "lost", "dups"})
		for _, id := range a.StreamIDs() {
			sm, _ := a.MetricsFor(id)
			st, _ := a.Flows.Stream(id)
			loss := sm.LossStats()
			w.Write([]string{
				strconv.FormatUint(uint64(id.Key.SSRC), 10),
				id.Key.Type.String(),
				id.Flow.String(),
				st.FirstSeen.Format("15:04:05.000"),
				st.LastSeen.Format("15:04:05.000"),
				strconv.FormatUint(sm.Packets, 10),
				strconv.FormatUint(sm.MediaBytes, 10),
				strconv.FormatUint(sm.FramesTotal, 10),
				strconv.FormatUint(loss.EstimatedLost, 10),
				strconv.FormatUint(loss.Duplicates, 10),
			})
		}
	case "flows":
		w.Write([]string{"flow", "first_seen", "last_seen", "packets", "bytes", "server_based", "p2p"})
		for _, fl := range a.Flows.Flows() {
			w.Write([]string{
				fl.Flow.String(),
				fl.FirstSeen.Format("15:04:05.000"),
				fl.LastSeen.Format("15:04:05.000"),
				strconv.FormatUint(fl.Packets, 10),
				strconv.FormatUint(fl.WireBytes, 10),
				strconv.FormatUint(fl.ServerBased, 10),
				strconv.FormatUint(fl.P2P, 10),
			})
		}
	case "meetings":
		w.Write([]string{"meeting", "start", "end", "participants", "streams", "clients"})
		for _, m := range a.Meetings() {
			clients := ""
			for i, c := range m.Clients {
				if i > 0 {
					clients += " "
				}
				clients += c.String()
			}
			w.Write([]string{
				strconv.Itoa(m.ID),
				m.Start.Format("15:04:05"),
				m.End.Format("15:04:05"),
				strconv.Itoa(m.Participants()),
				strconv.Itoa(len(m.Streams)),
				clients,
			})
		}
	case "reports":
		w.Write([]string{"meeting", "client", "streams", "video_fps", "jitter_p50_ms", "loss_rate", "retx_rate", "degraded", "meeting_wide", "mean_rtt_ms"})
		for _, rep := range a.MeetingReports() {
			for _, p := range rep.Participants {
				w.Write([]string{
					strconv.Itoa(rep.Meeting.ID),
					p.Client.String(),
					strconv.Itoa(p.Streams),
					fmt.Sprintf("%.1f", p.VideoFPSMean),
					fmt.Sprintf("%.2f", p.JitterP50MS),
					fmt.Sprintf("%.4f", p.LossRate),
					fmt.Sprintf("%.4f", p.RetransmissionRate),
					strconv.FormatBool(p.Degraded),
					strconv.FormatBool(rep.MeetingWideDegradation),
					fmt.Sprintf("%.1f", float64(rep.MeanRTT)/1e6),
				})
			}
		}
	case "summary":
		s := a.Summary()
		fmt.Printf("duration=%s packets=%d bytes=%d zoom_udp=%d tcp=%d stun=%d undecodable=%d flows=%d streams=%d meetings=%d evicted_flows=%d evicted_streams=%d rejected=%d panics=%d truncated=%t\n",
			s.Duration, s.Packets, s.Bytes, s.ZoomUDP, s.TCPPackets, s.STUNPackets, s.Undecodable, s.Flows, s.Streams, s.Meetings,
			s.EvictedFlows, s.EvictedStreams, s.RejectedPackets, s.PanicsRecovered, s.Truncated)
	default:
		log.Fatalf("unknown -what %q", *what)
	}
}

// emitStatus prints one JSON object on stderr describing how the run
// ended, and flushes the panic quarantine when one was requested.
func emitStatus(a *zoomlens.Analyzer, interrupted bool, quarantine *zoomlens.Quarantine, quarPath string) {
	s := a.Summary()
	reason := ""
	switch {
	case interrupted:
		reason = "interrupted"
	case s.Truncated:
		reason = "truncated_capture"
	}
	var quarantined uint64
	if quarantine != nil {
		quarantined = quarantine.Total()
		if quarantined > 0 {
			qf, err := os.Create(quarPath)
			if err != nil {
				log.Print(err)
			} else {
				if err := quarantine.WritePCAP(qf); err != nil {
					log.Print(err)
				}
				qf.Close()
			}
		}
	}
	fmt.Fprintf(os.Stderr,
		`{"partial":%t,"reason":%q,"packets":%d,"flows":%d,"streams":%d,"evicted_flows":%d,"evicted_streams":%d,"rejected_packets":%d,"panics_recovered":%d,"quarantined":%d,"truncated":%t}`+"\n",
		interrupted || s.Truncated, reason, s.Packets, s.Flows, s.Streams,
		s.EvictedFlows, s.EvictedStreams, s.RejectedPackets, s.PanicsRecovered, quarantined, s.Truncated)
}
