package zoomlens

// Differential tests for the streaming feature pipeline: the per-stream
// feature rows must be byte-identical — as versioned CSV — no matter
// which tier produced them (sequential engine, sharded parallel engine
// at any worker count, or a split → worker fleet → aggregator cluster
// run), no matter the capture container (classic pcap or pcapng), no
// matter the drain cadence, and across a mid-trace checkpoint/restore.
// The batch mode (BatchRows over a recorded observation sequence) is
// the same pipeline replayed, so it too must reproduce the streaming
// rows exactly.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"zoomlens/internal/cluster"
	"zoomlens/internal/core"
	"zoomlens/internal/features"
	"zoomlens/internal/pcap"
)

// featureCfg is the shared trace config with the feature layer enabled
// on a sub-second grid (the 30 s benchmark trace then spans ~60
// windows, enough closes to exercise eviction and partial finals).
func featureCfg(tb testing.TB) Config {
	_, _, cfg := benchTrace(tb)
	cfg.FeatureWindow = 500 * time.Millisecond
	return cfg
}

func featureCSV(tb testing.TB, rows []features.Row) string {
	tb.Helper()
	var buf bytes.Buffer
	if err := features.WriteCSV(&buf, rows); err != nil {
		tb.Fatal(err)
	}
	return buf.String()
}

// clusterFeatureRows models a full cluster run (splitter → pre-filtered
// workers exporting observation logs and checkpoints → aggregator
// replay) and returns the merged engine's feature rows.
func clusterFeatureRows(t *testing.T, cfg Config, recs []pcap.Record, workers int) []features.Row {
	t.Helper()
	sp := cluster.NewSplitter(cfg, workers)
	streams := make([]*bytes.Buffer, workers)
	for i := range streams {
		streams[i] = &bytes.Buffer{}
		if err := sp.Attach(i, streams[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, rec := range recs {
		if err := sp.Packet(rec.Timestamp, rec.Data); err != nil {
			t.Fatal(err)
		}
	}
	head := sp.Head(false)

	workerCfg := cfg
	workerCfg.PreFiltered = true
	parts := make([]*core.Analyzer, workers)
	readers := make([]*cluster.ObsReader, workers)
	for i := 0; i < workers; i++ {
		var obsLog bytes.Buffer
		a := NewAnalyzer(workerCfg)
		ow := cluster.NewObsWriter(&obsLog)
		if err := a.SetClusterSink(ow.Add); err != nil {
			t.Fatal(err)
		}
		feedWorkerStream(t, a, streams[i].Bytes())
		if err := ow.Flush(); err != nil {
			t.Fatal(err)
		}
		var state bytes.Buffer
		if err := a.Checkpoint(&state); err != nil {
			t.Fatal(err)
		}
		eng, err := RestoreAnalyzer(bytes.NewReader(state.Bytes()), cfg)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = eng.(*core.Analyzer)
		r, err := cluster.NewObsReader(obsLog.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		readers[i] = r
	}

	next, errf := cluster.MergeObs(readers)
	merged := core.MergeCluster(cfg, parts, head, next)
	if err := errf(); err != nil {
		t.Fatal(err)
	}
	merged.Finish()
	return merged.DrainFeatures()
}

// TestFeaturesPipelineDifferential pins the headline invariant: every
// tier emits byte-identical feature CSV from both capture containers,
// and drain cadence never changes the rows.
func TestFeaturesPipelineDifferential(t *testing.T) {
	raw, ngRaw := ingestTrace(t)
	cfg := featureCfg(t)

	for _, input := range []struct {
		name string
		data []byte
	}{{"pcap", raw}, {"pcapng", ngRaw}} {
		recs, truncated := tracePackets(t, input.data)
		if truncated {
			t.Fatalf("%s trace unexpectedly truncated", input.name)
		}

		ref := NewAnalyzer(cfg)
		for _, rec := range recs {
			ref.Packet(rec.Timestamp, rec.Data)
		}
		ref.Finish()
		refRows := ref.DrainFeatures()
		if len(refRows) < 20 {
			t.Fatalf("%s reference run emitted only %d feature rows", input.name, len(refRows))
		}
		want := featureCSV(t, refRows)

		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", input.name, workers), func(t *testing.T) {
				pa := NewParallelAnalyzer(cfg, workers)
				var rows []features.Row
				for pi, rec := range recs {
					pa.Packet(rec.Timestamp, rec.Data)
					// Mid-run drains at an arbitrary cadence must never
					// change row content or order.
					if pi%1000 == 999 {
						rows = append(rows, pa.DrainFeatures()...)
					}
				}
				pa.Finish()
				rows = append(rows, pa.DrainFeatures()...)
				if got := featureCSV(t, rows); got != want {
					t.Errorf("parallel rows diverge from sequential (lens %d vs %d)\nfirst diff: %s",
						len(got), len(want), firstDiffLine(want, got))
				}
			})
		}

		t.Run(input.name+"/cluster=2", func(t *testing.T) {
			rows := clusterFeatureRows(t, cfg, recs, 2)
			if got := featureCSV(t, rows); got != want {
				t.Errorf("cluster rows diverge from sequential (lens %d vs %d)\nfirst diff: %s",
					len(got), len(want), firstDiffLine(want, got))
			}
		})
	}
}

// TestFeaturesStreamingVsBatch replays the engine's own observation
// stream (recorded through the cluster sink — the same header-free view
// the windower consumes) through BatchRows and requires the batch rows
// to reproduce the streaming rows exactly.
func TestFeaturesStreamingVsBatch(t *testing.T) {
	raw, _ := ingestTrace(t)
	cfg := featureCfg(t)
	recs, _ := tracePackets(t, raw)

	ref := NewAnalyzer(cfg)
	for _, rec := range recs {
		ref.Packet(rec.Timestamp, rec.Data)
	}
	ref.Finish()
	want := featureCSV(t, ref.DrainFeatures())

	var obsSeq []features.Obs
	tap := NewAnalyzer(cfg)
	if err := tap.SetClusterSink(func(o core.ClusterObs) {
		obsSeq = append(obsSeq, features.Obs{
			At: o.At, Flow: o.Flow, Key: o.Key,
			WireLen: o.WireLen, PayloadLen: o.PayloadLen,
			PT: o.PT, RTPSeq: o.RTPSeq, RTPTS: o.RTPTS,
		})
	}); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		tap.Packet(rec.Timestamp, rec.Data)
	}
	tap.Finish()
	if len(obsSeq) == 0 {
		t.Fatal("observation tap saw nothing")
	}

	got := featureCSV(t, features.BatchRows(obsSeq, cfg.FeatureWindow))
	if got != want {
		t.Errorf("batch rows diverge from streaming (lens %d vs %d)\nfirst diff: %s",
			len(got), len(want), firstDiffLine(want, got))
	}
}

// TestFeaturesCheckpointResume interrupts a run mid-trace — draining
// the rows emitted so far, checkpointing, and restoring a successor —
// and requires drained-before-checkpoint plus drained-after-resume to
// equal an uninterrupted run exactly, for both engine kinds.
func TestFeaturesCheckpointResume(t *testing.T) {
	raw, _ := ingestTrace(t)
	cfg := featureCfg(t)
	recs, _ := tracePackets(t, raw)

	ref := NewAnalyzer(cfg)
	for _, rec := range recs {
		ref.Packet(rec.Timestamp, rec.Data)
	}
	ref.Finish()
	want := featureCSV(t, ref.DrainFeatures())

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var eng Engine
			if workers > 1 {
				eng = NewParallelAnalyzer(cfg, workers)
			} else {
				eng = NewAnalyzer(cfg)
			}
			cut := len(recs) / 2
			for _, rec := range recs[:cut] {
				eng.Packet(rec.Timestamp, rec.Data)
			}
			rows := eng.DrainFeatures()
			var ck bytes.Buffer
			if err := eng.Checkpoint(&ck); err != nil {
				t.Fatal(err)
			}
			successor, err := RestoreAnalyzer(bytes.NewReader(ck.Bytes()), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, rec := range recs[cut:] {
				successor.Packet(rec.Timestamp, rec.Data)
			}
			successor.Finish()
			rows = append(rows, successor.DrainFeatures()...)
			if got := featureCSV(t, rows); got != want {
				t.Errorf("resumed rows diverge from uninterrupted run (lens %d vs %d)\nfirst diff: %s",
					len(got), len(want), firstDiffLine(want, got))
			}
		})
	}
}
