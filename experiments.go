package zoomlens

import (
	"net/netip"
	"time"

	"zoomlens/internal/analysis"
	"zoomlens/internal/entropy"
	"zoomlens/internal/layers"
	"zoomlens/internal/netsim"
	"zoomlens/internal/sim"
	"zoomlens/internal/stun"
	"zoomlens/internal/tcprtt"
	"zoomlens/internal/trace"
	"zoomlens/internal/zoom"
)

// This file is the experiment harness: one Run* function per figure of
// the paper, plus RunCampus which backs every campus-trace table and
// figure (Tables 2/3/6, Figures 14–17). Table reproductions live in
// tables.go; benchmarks wiring each experiment to a `go test -bench`
// target live in bench_test.go.

// CampusResult is everything the campus-trace experiments read.
type CampusResult struct {
	Cfg      CampusConfig
	Analyzer *Analyzer

	// AllPerSecond / ZoomPerSecond are monitor packet counts per second
	// (Figure 17: Zoom vs all traffic).
	AllPerSecond  []Sample
	ZoomPerSecond []Sample

	// Meetings scheduled vs observed.
	PlannedMeetings int
}

// RunCampus simulates a campus day at the given scale and runs the full
// analysis pipeline over the border capture.
func RunCampus(cfg CampusConfig) *CampusResult {
	opts := sim.DefaultOptions()
	opts.Seed = cfg.Seed
	opts.Start = cfg.Start
	opts.SkipExternalDelivery = true
	w := sim.NewWorld(opts)

	a := NewAnalyzer(Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	})

	res := &CampusResult{Cfg: cfg, Analyzer: a}
	allBins := map[int64]float64{}
	zoomBins := map[int64]float64{}
	w.Monitor = func(at time.Time, frame []byte) {
		bin := at.Unix()
		allBins[bin]++
		dropped := a.DroppedByFilter
		a.Packet(at, frame)
		if a.DroppedByFilter == dropped {
			zoomBins[bin]++
		}
	}

	plans := trace.Schedule(cfg)
	res.PlannedMeetings = len(plans)
	r := trace.NewRunner(cfg, w)
	r.Install(plans)
	w.Run(cfg.Start.Add(cfg.Duration))
	a.Finish()

	res.AllPerSecond = binsToSeries(allBins)
	res.ZoomPerSecond = binsToSeries(zoomBins)
	return res
}

func binsToSeries(bins map[int64]float64) []Sample {
	if len(bins) == 0 {
		return nil
	}
	var min, max int64
	first := true
	for k := range bins {
		if first {
			min, max = k, k
			first = false
		}
		if k < min {
			min = k
		}
		if k > max {
			max = k
		}
	}
	out := make([]Sample, 0, max-min+1)
	for k := min; k <= max; k++ {
		out = append(out, Sample{Time: time.Unix(k, 0).UTC(), Value: bins[k]})
	}
	return out
}

// MediaRateSeries computes Figure 14: total media bit rate per media
// type in one-second bins (Mbit/s).
func (r *CampusResult) MediaRateSeries() map[MediaType][]Sample {
	agg := map[MediaType]map[int64]float64{}
	for _, id := range r.Analyzer.StreamIDs() {
		sm, _ := r.Analyzer.MetricsFor(id)
		m := agg[id.Key.Type]
		if m == nil {
			m = map[int64]float64{}
			agg[id.Key.Type] = m
		}
		for _, s := range sm.MediaRate.Samples {
			m[s.Time.Unix()] += s.Value / 1e6
		}
	}
	out := map[MediaType][]Sample{}
	for mt, m := range agg {
		out[mt] = binsToSeries(m)
	}
	return out
}

// Distributions computes the Figure 15 sample sets per media type:
// per-second data rate (Mbit/s), per-second frame rate (fps), frame
// sizes (bytes), and (video only) frame-level jitter (ms).
type Distributions struct {
	DataRateMbps map[MediaType][]float64
	FrameRate    map[MediaType][]float64
	FrameSize    map[MediaType][]float64
	JitterMS     map[MediaType][]float64
}

// Distributions extracts the Figure 15 sample sets. Streams shorter than
// minPackets packets are skipped as noise.
func (r *CampusResult) Distributions(minPackets uint64) *Distributions {
	d := &Distributions{
		DataRateMbps: map[MediaType][]float64{},
		FrameRate:    map[MediaType][]float64{},
		FrameSize:    map[MediaType][]float64{},
		JitterMS:     map[MediaType][]float64{},
	}
	for _, id := range r.Analyzer.StreamIDs() {
		sm, _ := r.Analyzer.MetricsFor(id)
		if sm.Packets < minPackets {
			continue
		}
		mt := id.Key.Type
		for _, s := range sm.MediaRate.Samples {
			d.DataRateMbps[mt] = append(d.DataRateMbps[mt], s.Value/1e6)
		}
		// Frame rate per one-second bin, including zero-frame bins
		// (screen sharing spends ~15 % of seconds at 0 fps, §6.2).
		if mt == TypeVideo || mt == TypeScreenShare {
			for _, s := range sm.FrameRate.Bin(r.Cfg.Start, time.Second, "last") {
				d.FrameRate[mt] = append(d.FrameRate[mt], s.Value)
			}
		}
		for _, s := range sm.FrameSize.Samples {
			d.FrameSize[mt] = append(d.FrameSize[mt], s.Value)
		}
		// Jitter only where the clock rate is known (video, §6.2).
		if mt == TypeVideo {
			for _, s := range sm.JitterMS.Bin(r.Cfg.Start, time.Second, "mean") {
				if s.Value > 0 {
					d.JitterMS[mt] = append(d.JitterMS[mt], s.Value)
				}
			}
		}
	}
	return d
}

// JitterCorrelation computes Figure 16: the Pearson correlation between
// per-second video jitter and bit rate, and jitter and frame rate. The
// paper's finding is the *absence* of correlation.
func (r *CampusResult) JitterCorrelation() (rBitrate, rFrameRate float64, n int) {
	var jit1, rate1, jit2, fps1 []float64
	for _, id := range r.Analyzer.StreamIDs() {
		if id.Key.Type != TypeVideo {
			continue
		}
		sm, _ := r.Analyzer.MetricsFor(id)
		j := sm.JitterMS.Bin(r.Cfg.Start, time.Second, "mean")
		br := sm.MediaRate.Bin(r.Cfg.Start, time.Second, "mean")
		fr := sm.FrameRate.Bin(r.Cfg.Start, time.Second, "last")
		byTime := map[int64][3]float64{}
		for _, s := range j {
			if s.Value > 0 {
				byTime[s.Time.Unix()] = [3]float64{s.Value, -1, -1}
			}
		}
		for _, s := range br {
			if v, ok := byTime[s.Time.Unix()]; ok {
				v[1] = s.Value / 1e6
				byTime[s.Time.Unix()] = v
			}
		}
		for _, s := range fr {
			if v, ok := byTime[s.Time.Unix()]; ok {
				v[2] = s.Value
				byTime[s.Time.Unix()] = v
			}
		}
		for _, v := range byTime {
			if v[1] >= 0 && v[2] >= 0 {
				jit1 = append(jit1, v[0])
				rate1 = append(rate1, v[1])
				jit2 = append(jit2, v[0])
				fps1 = append(fps1, v[2])
			}
		}
	}
	return analysis.Pearson(jit1, rate1), analysis.Pearson(jit2, fps1), len(jit1)
}

// ValidationResult holds the Figure 10 controlled-experiment outputs:
// passive estimates vs the client's own QoS statistics for one received
// video stream.
type ValidationResult struct {
	// EstimatedFPS is the §5.2 method-1 frame rate, binned per second.
	EstimatedFPS []Sample
	// QoSFPS is the ground truth reported by the receiving client.
	QoSFPS []Sample
	// EstimatedRTTMS is the §5.3 method-1 RTT series (per matched
	// packet pair).
	EstimatedRTTMS []Sample
	// QoSLatencyMS is the client's latency stat (5-second refresh).
	QoSLatencyMS []Sample
	// EstimatedJitterMS is the §5.4 frame-level jitter.
	EstimatedJitterMS []Sample
	// QoSJitterMS is the client's (heavily smoothed) jitter stat.
	QoSJitterMS []Sample

	// FPSMae is the mean absolute error between estimate and QoS fps on
	// matching seconds.
	FPSMae float64
	// CongestionWindows are the injected cross-traffic episodes.
	CongestionWindows []Congestion
}

// RunValidation reproduces the §5 controlled experiment behind Figures
// 10a–10c: a two-party on-campus meeting of the given duration with two
// injected congestion episodes, analyzed passively at the border and
// compared against the receiving client's QoS log.
func RunValidation(seconds int, seed int64) *ValidationResult {
	opts := sim.DefaultOptions()
	opts.Seed = seed
	w := sim.NewWorld(opts)
	a := NewAnalyzer(Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	})
	w.Monitor = a.Packet

	m := w.NewMeeting()
	alice := w.NewClient("alice", true)
	bob := w.NewClient("bob", true)
	m.Join(alice, sim.DefaultMediaSet())
	m.Join(bob, sim.DefaultMediaSet())

	// Two cross-traffic injections, like the paper's bandwidth tests
	// (10–20 s each).
	e1 := netsim.Congestion{
		Start:       opts.Start.Add(time.Duration(seconds/4) * time.Second),
		End:         opts.Start.Add(time.Duration(seconds/4+15) * time.Second),
		ExtraDelay:  25 * time.Millisecond,
		ExtraJitter: 35 * time.Millisecond,
		LossRate:    0.02,
	}
	e2 := netsim.Congestion{
		Start:       opts.Start.Add(time.Duration(2*seconds/3) * time.Second),
		End:         opts.Start.Add(time.Duration(2*seconds/3+20) * time.Second),
		ExtraDelay:  35 * time.Millisecond,
		ExtraJitter: 45 * time.Millisecond,
		LossRate:    0.03,
	}
	w.WanDown.Episodes = append(w.WanDown.Episodes, e1, e2)
	w.Run(opts.Start.Add(time.Duration(seconds) * time.Second))
	a.Finish()

	res := &ValidationResult{CongestionWindows: []Congestion{e1, e2}}

	// The stream under test: Alice's video as delivered to Bob (the
	// downlink crosses the congested WanDown leg).
	var target *StreamMetrics
	for _, id := range a.StreamIDs() {
		if id.Key.Type != TypeVideo {
			continue
		}
		if id.Flow.Dst == bob.Addr {
			sm, _ := a.MetricsFor(id)
			if target == nil || sm.Packets > target.Packets {
				target = sm
			}
		}
	}
	if target == nil {
		return res
	}
	res.EstimatedFPS = target.FrameRate.Bin(opts.Start, time.Second, "last")
	res.EstimatedJitterMS = target.JitterMS.Samples
	res.EstimatedRTTMS = a.Copies.SeriesMS().Samples

	for _, e := range bob.QoS().Entries {
		res.QoSFPS = append(res.QoSFPS, Sample{Time: e.Time, Value: e.VideoFPS})
		res.QoSLatencyMS = append(res.QoSLatencyMS, Sample{Time: e.Time, Value: e.LatencyMS})
		res.QoSJitterMS = append(res.QoSJitterMS, Sample{Time: e.Time, Value: e.JitterMS})
	}

	// FPS accuracy: join estimate and truth on the second.
	est := map[int64]float64{}
	for _, s := range res.EstimatedFPS {
		est[s.Time.Unix()] = s.Value
	}
	var e, q []float64
	for _, s := range res.QoSFPS {
		if v, ok := est[s.Time.Unix()]; ok {
			e = append(e, v)
			q = append(q, s.Value)
		}
	}
	res.FPSMae = analysis.MeanAbsError(e, q)
	return res
}

// P2PEstablishment captures the Figure 2 event sequence as observed at
// the monitor.
type P2PEstablishment struct {
	STUNSeen      bool
	STUNTime      time.Time
	STUNPort      uint16 // server-side port (must be 3478)
	ClientPort    uint16 // ephemeral port announced and later reused
	P2PSeen       bool
	P2PTime       time.Time
	P2PSamePort   bool
	ServerPhase   bool // media via SFU observed before the switch
	RevertedToSFU bool
}

// RunP2PEstablishment reproduces Figure 2: a two-party meeting with one
// external peer establishes P2P after a STUN exchange; a third join
// reverts it.
func RunP2PEstablishment(seed int64) *P2PEstablishment {
	opts := sim.DefaultOptions()
	opts.Seed = seed
	w := sim.NewWorld(opts)
	m := w.NewMeeting()
	m.EnableP2P(10 * time.Second)
	a := w.NewClient("a", true)
	b := w.NewClient("b", false)

	out := &P2PEstablishment{}
	parser := &layers.Parser{}
	w.Monitor = func(at time.Time, frame []byte) {
		var p layers.Packet
		if parser.Parse(frame, &p) != nil || !p.HasUDP {
			return
		}
		if stun.Is(p.Payload) {
			if !out.STUNSeen {
				out.STUNSeen = true
				out.STUNTime = at
				out.STUNPort = p.UDP.DstPort
				out.ClientPort = p.UDP.SrcPort
			}
			return
		}
		zp, err := zoom.ParsePacket(p.Payload, zoom.ModeAuto)
		if err != nil {
			return
		}
		if zp.ServerBased {
			out.ServerPhase = true
			if out.P2PSeen {
				out.RevertedToSFU = true
			}
		} else if !out.P2PSeen {
			out.P2PSeen = true
			out.P2PTime = at
			out.P2PSamePort = p.UDP.SrcPort == out.ClientPort || p.UDP.DstPort == out.ClientPort
		}
	}
	m.Join(a, sim.DefaultMediaSet())
	m.Join(b, sim.DefaultMediaSet())
	w.Run(opts.Start.Add(20 * time.Second))
	// Third participant: revert.
	m.Join(w.NewClient("c", true), sim.DefaultMediaSet())
	w.Run(opts.Start.Add(30 * time.Second))
	return out
}

// EntropyReport is the Figure 5 reproduction: classified byte ranges of
// a single Zoom UDP flow, with the RTP signature locations.
type EntropyReport struct {
	Analyses   []EntropyAnalysis
	RTPOffsets []int
	// Classes indexes findings at the known field offsets of a
	// server-based video packet.
	Classes map[string]FieldClass
}

// RunEntropyAnalysis captures one server-based video flow from the
// simulator and runs the §4.2.1 methodology over it.
func RunEntropyAnalysis(seed int64) *EntropyReport {
	opts := sim.DefaultOptions()
	opts.Seed = seed
	w := sim.NewWorld(opts)
	var payloads [][]byte
	var flowSrc uint16
	parser := &layers.Parser{}
	w.Monitor = func(at time.Time, frame []byte) {
		var p layers.Packet
		if parser.Parse(frame, &p) != nil || !p.HasUDP {
			return
		}
		// A single uplink UDP flow, as in §4.2.1 ("a single UDP stream"):
		// lock onto the first video-bearing flow seen.
		if p.UDP.DstPort != zoom.ServerMediaPort || len(p.Payload) <= 32 ||
			p.Payload[0] != zoom.SFUTypeMedia || p.Payload[8] != uint8(zoom.TypeVideo) {
			return
		}
		if flowSrc == 0 {
			flowSrc = p.UDP.SrcPort
		}
		if p.UDP.SrcPort != flowSrc {
			return
		}
		cp := make([]byte, len(p.Payload))
		copy(cp, p.Payload)
		payloads = append(payloads, cp)
	}
	m := w.NewMeeting()
	m.Join(w.NewClient("a", true), sim.DefaultMediaSet())
	m.Join(w.NewClient("b", true), sim.DefaultMediaSet())
	w.Run(opts.Start.Add(30 * time.Second))

	rep := &EntropyReport{Classes: map[string]FieldClass{}}
	rep.Analyses = EntropySweep(payloads, 64)
	for _, sig := range entropy.FindRTP(payloads, 64) {
		rep.RTPOffsets = append(rep.RTPOffsets, sig.Offset)
	}
	class := func(off, width int) FieldClass {
		return entropy.Classify(entropy.Extract(payloads, off, width)).Class
	}
	rep.Classes["sfu.type"] = class(0, 1)
	rep.Classes["sfu.seq"] = class(1, 2)
	rep.Classes["media.type"] = class(8, 1)
	rep.Classes["media.seq"] = class(17, 2)
	rep.Classes["media.ts"] = class(19, 4)
	rep.Classes["rtp.seq"] = class(34, 2)
	rep.Classes["rtp.ts"] = class(36, 4)
	rep.Classes["rtp.ssrc"] = class(40, 4)
	rep.Classes["payload"] = class(100, 4)
	return rep
}

// TCPRTTResult is the Figure 11 reproduction: the latency decomposition
// via the control connection.
type TCPRTTResult struct {
	PerClient map[string]tcprtt.SplitStats
}

// RunTCPRTT measures control-connection RTTs for a two-party meeting.
func RunTCPRTT(seconds int, seed int64) *TCPRTTResult {
	opts := sim.DefaultOptions()
	opts.Seed = seed
	w := sim.NewWorld(opts)
	a := NewAnalyzer(Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	})
	w.Monitor = a.Packet
	m := w.NewMeeting()
	m.Join(w.NewClient("a", true), sim.DefaultMediaSet())
	m.Join(w.NewClient("b", true), sim.DefaultMediaSet())
	w.Run(opts.Start.Add(time.Duration(seconds) * time.Second))
	a.Finish()

	out := &TCPRTTResult{PerClient: map[string]tcprtt.SplitStats{}}
	for client, tr := range a.TCP {
		out.PerClient[client.String()] = tr.Split()
	}
	return out
}
