package zoomlens

// Differential test for the engine layer: the same serialized capture,
// replayed through the zero-copy ingest loop at several worker counts,
// must render byte-identical reports. This is the end-to-end guard for
// the decode-once dispatcher and the Rebase slice retargeting — a bug in
// either shows up as a diverging stream table or metric series here.

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"zoomlens/internal/pcap"
	"zoomlens/internal/rtcproto"
)

// renderReport flattens everything the CLIs print into one string:
// summary, per-stream loss stats, per-flow counters, meetings, and
// participant roll-ups.
func renderReport(a *Analyzer) string {
	var b strings.Builder
	s := a.Summary()
	fmt.Fprintf(&b, "summary %+v\n", s)
	for _, id := range a.StreamIDs() {
		sm, _ := a.MetricsFor(id)
		ls := sm.LossStats()
		fmt.Fprintf(&b, "stream %d %s %s %s pkts=%d media=%d frames=%d loss=%+v\n",
			id.Key.SSRC, rtcproto.NameOf(id.Key.Proto), id.Key.Type, id.Flow, sm.Packets, sm.MediaBytes, sm.FramesTotal, ls)
		for _, smp := range sm.MediaRate.Samples {
			fmt.Fprintf(&b, "  rate %s %.6f\n", smp.Time.Format("15:04:05.000000000"), smp.Value)
		}
		for _, smp := range sm.JitterMS.Samples {
			fmt.Fprintf(&b, "  jit %s %.6f\n", smp.Time.Format("15:04:05.000000000"), smp.Value)
		}
	}
	for _, fl := range a.Flows.Flows() {
		fmt.Fprintf(&b, "flow %s pkts=%d bytes=%d sb=%d p2p=%d\n",
			fl.Flow, fl.Packets, fl.WireBytes, fl.ServerBased, fl.P2P)
	}
	for _, m := range a.Meetings() {
		fmt.Fprintf(&b, "meeting %d %s %s..%s participants=%d streams=%d\n",
			m.ID, rtcproto.NameOf(m.Proto), m.Start.Format("15:04:05"), m.End.Format("15:04:05"), m.Participants(), len(m.Streams))
	}
	for _, rep := range a.MeetingReports() {
		for _, p := range rep.Participants {
			fmt.Fprintf(&b, "participant %d %s %+v\n", rep.Meeting.ID, p.Client, p)
		}
	}
	return b.String()
}

func TestIngestDifferentialWorkers(t *testing.T) {
	raw, ngRaw := ingestTrace(t)
	_, _, cfg := benchTrace(t)

	replay := func(serialized []byte, workers int) string {
		s, err := pcap.OpenStream(bytes.NewReader(serialized))
		if err != nil {
			t.Fatal(err)
		}
		var eng Engine
		if workers > 1 {
			eng = NewParallelAnalyzer(cfg, workers)
		} else {
			eng = NewAnalyzer(cfg)
		}
		var rec pcap.Record
		for {
			err := s.NextInto(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			eng.Packet(rec.Timestamp, rec.Data)
		}
		eng.Finish()
		return renderReport(eng.Result())
	}

	want := replay(raw, 1)
	if len(want) == 0 || !strings.Contains(want, "stream ") {
		t.Fatalf("sequential report is empty or streamless:\n%.400s", want)
	}
	for _, workers := range []int{2, 4, 8} {
		if got := replay(raw, workers); got != want {
			t.Errorf("workers=%d report diverges from sequential (lens %d vs %d)",
				workers, len(got), len(want))
		}
	}
	// The pcapng serialization of the same trace must also be invisible
	// to the report.
	if got := replay(ngRaw, 4); got != want {
		t.Error("pcapng replay diverges from classic pcap replay")
	}
}
