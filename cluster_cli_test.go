package zoomlens

// End-to-end cluster pipeline over the real binaries: zoomsim →
// zoomsplit → N worker zoomqoe processes (-cluster-part) → zoomagg.
// The merged checkpoint, rendered by an ordinary zoomqoe -restore over
// an empty capture, must be byte-identical to a single zoomqoe run over
// the whole capture — including a run where every worker is drained,
// checkpointed, and restored mid-trace (the migration path).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"zoomlens/internal/pcap"
)

// runToolSplit runs a built CLI tool returning stdout and stderr
// separately (the status JSON lands on stderr and must not pollute
// byte-compared reports).
func runToolSplit(t *testing.T, dir, name string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, name), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s", name, args, err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String()
}

// writeEmptyPcap writes a header-only classic pcap (the input for
// rendering a restored checkpoint without ingesting anything).
func writeEmptyPcap(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pcap.NewWriter(f, pcap.WriterOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterCLI(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	meeting := filepath.Join(work, "meeting.pcap")
	empty := filepath.Join(work, "empty.pcap")
	writeEmptyPcap(t, empty)

	runToolSplit(t, bin, "zoomsim", "-o", meeting, "-mode", "meeting", "-duration", "20s", "-congest")
	want, _ := runToolSplit(t, bin, "zoomqoe", "-i", meeting, "-what", "loss")
	if strings.Count(want, "\n") < 2 {
		t.Fatalf("reference loss report too short:\n%s", want)
	}

	t.Run("fanout", func(t *testing.T) {
		prefix := filepath.Join(work, "sp")
		_, serr := runToolSplit(t, bin, "zoomsplit", "-i", meeting, "-n", "2", "-out", prefix)
		if !strings.Contains(serr, "split ") {
			t.Fatalf("zoomsplit stderr: %s", serr)
		}
		var parts []string
		for i := 0; i < 2; i++ {
			part := fmt.Sprintf("%s-%03d", prefix, i)
			runToolSplit(t, bin, "zoomqoe", "-i", part+".pcapng", "-cluster-part", part, "-what", "loss")
			for _, suffix := range []string{".state.zlcp", ".obs", ".status.json"} {
				if _, err := os.Stat(part + suffix); err != nil {
					t.Fatalf("worker %d left no %s artifact: %v", i, suffix, err)
				}
			}
			parts = append(parts, part)
		}
		merged := filepath.Join(work, "merged.zlcp")
		runToolSplit(t, bin, "zoomagg",
			"-cluster-merge", strings.Join(parts, ","),
			"-manifest", prefix+".manifest.json",
			"-checkpoint-out", merged)
		// Render-only: -restore without -i reads the report straight out
		// of the merged state.
		got, _ := runToolSplit(t, bin, "zoomqoe", "-restore", merged, "-what", "loss")
		if got != want {
			t.Errorf("cluster-merged report diverges from single run (lens %d vs %d)\nfirst diff: %s",
				len(got), len(want), firstDiffLine(want, got))
		}

		// The operational status roll-up: worker packet counts sum.
		statusFiles := []string{parts[0] + ".status.json", parts[1] + ".status.json"}
		sout, _ := runToolSplit(t, bin, "zoomagg", "-status", strings.Join(statusFiles, ","))
		var ms map[string]any
		if err := json.Unmarshal([]byte(sout), &ms); err != nil {
			t.Fatalf("merged status is not JSON: %v\n%s", err, sout)
		}
		var sum float64
		for _, f := range statusFiles {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var one map[string]any
			if err := json.Unmarshal(data, &one); err != nil {
				t.Fatalf("worker status %s: %v", f, err)
			}
			sum += one["packets"].(float64)
		}
		if got := ms["packets"].(float64); got != sum || sum == 0 {
			t.Errorf("merged status packets = %v, want worker sum %v (> 0)", got, sum)
		}
	})

	t.Run("migration", func(t *testing.T) {
		prefix := filepath.Join(work, "mg")
		runToolSplit(t, bin, "zoomsplit", "-i", meeting, "-n", "2", "-out", prefix, "-cut", "500")
		var parts []string
		var extraObs []string
		for i := 0; i < 2; i++ {
			first := fmt.Sprintf("%s-%03d", prefix, i)
			second := first + "b"
			// First life: consume the pre-cut stream; its shutdown
			// checkpoint is the migration handoff.
			runToolSplit(t, bin, "zoomqoe", "-i", first+".pcapng", "-cluster-part", first, "-what", "loss")
			// Second life "elsewhere": restore the checkpoint under a new
			// part prefix and consume the rotated stream.
			runToolSplit(t, bin, "zoomqoe", "-i", fmt.Sprintf("%s-%03d.1.pcapng", prefix, i),
				"-cluster-part", second, "-restore", first+".state.zlcp", "-what", "loss")
			parts = append(parts, second)
			extraObs = append(extraObs, first+".obs")
		}
		merged := filepath.Join(work, "merged-mg.zlcp")
		aout, _ := runToolSplit(t, bin, "zoomagg",
			"-cluster-merge", strings.Join(parts, ","),
			"-obs", strings.Join(extraObs, ","),
			"-manifest", prefix+".manifest.json",
			"-checkpoint-out", merged,
			"-summary")
		if !strings.Contains(aout, `"Packets"`) && !strings.Contains(aout, `"packets"`) {
			t.Fatalf("zoomagg -summary output: %s", aout)
		}
		got, _ := runToolSplit(t, bin, "zoomqoe", "-i", empty, "-restore", merged, "-what", "loss")
		if got != want {
			t.Errorf("post-migration cluster report diverges (lens %d vs %d)\nfirst diff: %s",
				len(got), len(want), firstDiffLine(want, got))
		}
	})

	t.Run("exec", func(t *testing.T) {
		// -exec mode: the splitter spawns the workers itself and feeds
		// them over stdin pipes.
		prefix := filepath.Join(work, "ex")
		workerCmd := fmt.Sprintf("%s -i - -cluster-part %s-$ZOOMSPLIT_WORKER -what loss >/dev/null",
			filepath.Join(bin, "zoomqoe"), prefix)
		runToolSplit(t, bin, "zoomsplit", "-i", meeting, "-n", "2",
			"-exec", workerCmd, "-manifest", prefix+".manifest.json")
		deadline := time.Now().Add(5 * time.Second)
		for _, part := range []string{prefix + "-0", prefix + "-1"} {
			for {
				if _, err := os.Stat(part + ".state.zlcp"); err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("worker artifact %s.state.zlcp never appeared", part)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
		merged := filepath.Join(work, "merged-ex.zlcp")
		runToolSplit(t, bin, "zoomagg",
			"-cluster-merge", prefix+"-0,"+prefix+"-1",
			"-manifest", prefix+".manifest.json",
			"-checkpoint-out", merged)
		got, _ := runToolSplit(t, bin, "zoomqoe", "-restore", merged, "-what", "loss")
		if got != want {
			t.Errorf("exec-mode cluster report diverges (lens %d vs %d)\nfirst diff: %s",
				len(got), len(want), firstDiffLine(want, got))
		}
	})
}
