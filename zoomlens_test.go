package zoomlens

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// smallCampus returns a fast (seconds-scale) campus configuration that
// still includes an hour-boundary spike: 10:00 ± a few minutes.
func smallCampus() CampusConfig {
	cfg := DefaultCampusConfig()
	cfg.Start = time.Date(2022, 5, 5, 9, 58, 0, 0, time.UTC)
	cfg.Duration = 5 * time.Minute
	cfg.MeetingsPerHourPeak = 20
	cfg.BackgroundPPS = 4000
	return cfg
}

var (
	campusOnce sync.Once
	campusRes  *CampusResult
)

func campus(t testing.TB) *CampusResult {
	campusOnce.Do(func() { campusRes = RunCampus(smallCampus()) })
	if campusRes == nil {
		t.Fatal("campus run failed")
	}
	return campusRes
}

func TestRunCampusBasics(t *testing.T) {
	r := campus(t)
	sum := r.Analyzer.Summary()
	if sum.Packets < 10_000 {
		t.Fatalf("packets = %d", sum.Packets)
	}
	if sum.Meetings == 0 || sum.Streams == 0 {
		t.Fatalf("meetings=%d streams=%d", sum.Meetings, sum.Streams)
	}
	if r.PlannedMeetings == 0 {
		t.Fatal("no meetings planned")
	}
	// Figure 17 shape: Zoom is a subset of all traffic.
	if len(r.AllPerSecond) == 0 || len(r.ZoomPerSecond) == 0 {
		t.Fatal("missing per-second series")
	}
	var all, zm float64
	for _, s := range r.AllPerSecond {
		all += s.Value
	}
	for _, s := range r.ZoomPerSecond {
		zm += s.Value
	}
	if !(zm < all) || zm == 0 {
		t.Errorf("zoom=%v all=%v", zm, all)
	}
}

func TestCampusFigure14Shape(t *testing.T) {
	r := campus(t)
	series := r.MediaRateSeries()
	sumOf := func(mt MediaType) float64 {
		var s float64
		for _, x := range series[mt] {
			s += x.Value
		}
		return s
	}
	video, audio := sumOf(TypeVideo), sumOf(TypeAudio)
	if video == 0 || audio == 0 {
		t.Fatalf("video=%v audio=%v", video, audio)
	}
	if video <= 3*audio {
		t.Errorf("video (%v) should dwarf audio (%v)", video, audio)
	}
}

func TestCampusFigure15Distributions(t *testing.T) {
	r := campus(t)
	d := r.Distributions(100)
	if len(d.DataRateMbps[TypeVideo]) == 0 || len(d.FrameSize[TypeVideo]) == 0 {
		t.Fatal("missing video distributions")
	}
	// 15a: median audio rate well below median video rate.
	if len(d.DataRateMbps[TypeAudio]) > 0 {
		va := NewCDF(d.DataRateMbps[TypeVideo]).Quantile(0.5)
		au := NewCDF(d.DataRateMbps[TypeAudio]).Quantile(0.5)
		if va <= au {
			t.Errorf("median rates: video %v vs audio %v", va, au)
		}
	}
	// 15c: most video frames under 2000 bytes.
	fs := NewCDF(d.FrameSize[TypeVideo])
	if p := fs.At(2000); p < 0.5 {
		t.Errorf("P(video frame < 2000B) = %v", p)
	}
	// 15d: most video jitter below 20 ms.
	if len(d.JitterMS[TypeVideo]) > 0 {
		j := NewCDF(d.JitterMS[TypeVideo])
		if p := j.At(20); p < 0.7 {
			t.Errorf("P(jitter < 20ms) = %v", p)
		}
	}
	// 15b: screen-share frame rates include zero bins when present.
	if ss := d.FrameRate[TypeScreenShare]; len(ss) > 20 {
		zeros := 0
		for _, v := range ss {
			if v == 0 {
				zeros++
			}
		}
		if zeros == 0 {
			t.Error("no zero-fps screen share samples")
		}
	}
}

func TestCampusFigure16NoCorrelation(t *testing.T) {
	r := campus(t)
	rBit, rFps, n := r.JitterCorrelation()
	if n < 50 {
		t.Skipf("only %d joined samples", n)
	}
	if math.Abs(rBit) > 0.4 {
		t.Errorf("jitter-bitrate r = %v, want weak", rBit)
	}
	if math.Abs(rFps) > 0.4 {
		t.Errorf("jitter-framerate r = %v, want weak", rFps)
	}
}

func TestRunValidationFigure10(t *testing.T) {
	v := RunValidation(120, 3)
	if len(v.EstimatedFPS) == 0 || len(v.QoSFPS) == 0 {
		t.Fatal("missing fps series")
	}
	if len(v.EstimatedRTTMS) == 0 || len(v.QoSLatencyMS) == 0 {
		t.Fatal("missing latency series")
	}
	if len(v.EstimatedJitterMS) == 0 || len(v.QoSJitterMS) == 0 {
		t.Fatal("missing jitter series")
	}
	// Figure 10a: estimate tracks ground truth closely.
	if v.FPSMae > 4 {
		t.Errorf("fps MAE = %v, want < 4", v.FPSMae)
	}
	// Our estimate yields far more latency samples than the 5s-refresh
	// QoS data (the paper's point in §5.3).
	if len(v.EstimatedRTTMS) < 5*len(v.QoSLatencyMS) {
		t.Errorf("rtt samples %d vs qos %d: passive estimation should be denser", len(v.EstimatedRTTMS), len(v.QoSLatencyMS))
	}
	// Figure 10c: Zoom's reported jitter stays tiny even under
	// congestion, while our estimate responds (the observed mismatch).
	maxQoS := 0.0
	for _, s := range v.QoSJitterMS {
		if s.Value > maxQoS {
			maxQoS = s.Value
		}
	}
	maxEst := 0.0
	for _, s := range v.EstimatedJitterMS {
		if s.Value > maxEst {
			maxEst = s.Value
		}
	}
	if maxQoS > 3 {
		t.Errorf("QoS jitter max = %v ms, want ≤ ~2 (heavy smoothing)", maxQoS)
	}
	if maxEst < 2*maxQoS {
		t.Errorf("estimate max %v vs qos max %v: estimate should exceed", maxEst, maxQoS)
	}
	// Frame rate must dip during at least one congestion window.
	dip := false
	for _, w := range v.CongestionWindows {
		var in, out []float64
		for _, s := range v.EstimatedFPS {
			if s.Time.After(w.Start.Add(3*time.Second)) && s.Time.Before(w.End) {
				in = append(in, s.Value)
			} else if s.Time.Before(w.Start) && s.Time.After(w.Start.Add(-15*time.Second)) {
				out = append(out, s.Value)
			}
		}
		if len(in) > 0 && len(out) > 0 && avg(in) < avg(out)-4 {
			dip = true
		}
	}
	if !dip {
		t.Error("no frame-rate dip during congestion windows")
	}
}

func TestRunP2PEstablishmentFigure2(t *testing.T) {
	p := RunP2PEstablishment(5)
	if !p.STUNSeen {
		t.Fatal("no STUN exchange")
	}
	if p.STUNPort != 3478 {
		t.Errorf("stun port = %d", p.STUNPort)
	}
	if !p.P2PSeen {
		t.Fatal("no P2P media")
	}
	if !p.STUNTime.Before(p.P2PTime) {
		t.Error("STUN did not precede P2P")
	}
	if !p.P2PSamePort {
		t.Error("P2P flow did not reuse the STUN-announced port")
	}
	if !p.ServerPhase {
		t.Error("no server-based phase observed")
	}
	if !p.RevertedToSFU {
		t.Error("meeting did not revert to SFU after third join")
	}
}

func TestRunEntropyAnalysisFigure5(t *testing.T) {
	rep := RunEntropyAnalysis(2)
	if len(rep.Analyses) == 0 {
		t.Fatal("no analyses")
	}
	wantCounter := []string{"sfu.seq", "media.seq", "media.ts", "rtp.seq", "rtp.ts"}
	for _, k := range wantCounter {
		if got := rep.Classes[k]; got.String() != "counter" {
			t.Errorf("%s classified %v, want counter", k, got)
		}
	}
	for _, k := range []string{"sfu.type", "media.type", "rtp.ssrc"} {
		if got := rep.Classes[k].String(); got != "constant" && got != "identifier" {
			t.Errorf("%s classified %v, want constant/identifier", k, got)
		}
	}
	if got := rep.Classes["payload"].String(); got != "random" {
		t.Errorf("payload classified %v, want random", got)
	}
	// The RTP signature search must find the true header offset 34.
	found := false
	for _, off := range rep.RTPOffsets {
		if off == 34 {
			found = true
		}
	}
	if !found {
		t.Errorf("RTP signature offsets = %v, want to include 34", rep.RTPOffsets)
	}
}

func TestRunTCPRTTFigure11(t *testing.T) {
	r := RunTCPRTT(20, 4)
	if len(r.PerClient) == 0 {
		t.Fatal("no clients")
	}
	for client, sp := range r.PerClient {
		if sp.ToServerSamples == 0 || sp.ToClientSamples == 0 {
			t.Errorf("%s: %+v", client, sp)
		}
		if sp.ToServerMean <= sp.ToClientMean {
			t.Errorf("%s: server leg %v ≤ client leg %v", client, sp.ToServerMean, sp.ToClientMean)
		}
	}
}

func TestTablesRender(t *testing.T) {
	r := campus(t)
	for name, s := range map[string]string{
		"t1": Table1().String(),
		"t2": Table2(r).String(),
		"t3": Table3(r).String(),
		"t4": Table4().String(),
		"t5": Table5(),
		"t6": Table6(r).String(),
		"t7": Table7(BuildInventory(1)).String(),
	} {
		if len(s) < 50 || !strings.Contains(s, "Table") {
			t.Errorf("%s render too small:\n%s", name, s)
		}
	}
}

func TestTable2SharesShape(t *testing.T) {
	r := campus(t)
	shares := Table2Shares(r)
	if len(shares) == 0 {
		t.Fatal("no shares")
	}
	if shares[0].Type != TypeVideo {
		t.Errorf("dominant type = %v", shares[0].Type)
	}
	var pkts, bytes float64
	for _, s := range shares {
		pkts += s.PacketsPct
		bytes += s.BytesPct
	}
	// Paper: decodable media ≈ 90 % of packets, ≈ 94.5 % of bytes (the
	// rest is control). Accept a generous band around that shape.
	if pkts < 55 || pkts > 99 {
		t.Errorf("decodable packet share = %v%%", pkts)
	}
	if bytes < 70 || bytes > 100 {
		t.Errorf("decodable byte share = %v%%", bytes)
	}
	if bytes <= pkts {
		t.Errorf("byte share (%v) should exceed packet share (%v): control packets are small", bytes, pkts)
	}
}

func TestTable3SharesShape(t *testing.T) {
	r := campus(t)
	shares := Table3Shares(r)
	if shares[0].Substream.String() != "video/main" {
		t.Errorf("top substream = %v", shares[0].Substream)
	}
	var videoMainPct, audioSpeakPct float64
	for _, s := range shares {
		switch s.Substream.String() {
		case "video/main":
			videoMainPct = s.PacketsPct
		case "audio/speaking":
			audioSpeakPct = s.PacketsPct
		}
	}
	if videoMainPct <= audioSpeakPct {
		t.Errorf("video main (%v%%) should exceed audio speaking (%v%%)", videoMainPct, audioSpeakPct)
	}
}

func TestTable7Totals(t *testing.T) {
	res := Table7Survey(BuildInventory(1))
	if res.TotalMMR != 5452 || res.TotalZC != 256 {
		t.Errorf("totals = %d/%d", res.TotalMMR, res.TotalZC)
	}
}

func TestDefaultZoomNetworks(t *testing.T) {
	nets := DefaultZoomNetworks()
	if len(nets) != 117 {
		t.Errorf("networks = %d, want 117", len(nets))
	}
}

func avg(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
