module zoomlens

go 1.22
