package zoomlens

// Ablation benchmarks: each quantifies one design choice of the paper
// (or of this implementation) by running the pipeline with the
// mechanism enabled and disabled/degraded.
//
//	go test -bench=Ablation -benchtime 1x
//
// Covered ablations:
//
//   - dataplane accuracy vs table size (§8: approximate data structures
//     limiting accuracy);
//   - meeting grouping with vs without step 1's unified stream IDs
//     (§4.3.2: "this identifier greatly increases the accuracy");
//   - frame-level vs naive packet-level jitter (§5.4 / Figure 12: RTP
//     bursts make packet interarrival variance meaningless);
//   - delivered vs encoder frame rate under congestion (§5.2: the two
//     methods diverge exactly when the network is the bottleneck);
//   - the P2P detection timeout (§4.1: too short misses the switch,
//     since Zoom takes tens of seconds to go direct).

import (
	"fmt"
	"math"
	"net/netip"
	"testing"
	"time"

	"zoomlens/internal/capture"
	"zoomlens/internal/dataplane"
	"zoomlens/internal/layers"
	"zoomlens/internal/meeting"
	"zoomlens/internal/rtp"
	"zoomlens/internal/sim"
	"zoomlens/internal/stun"
	"zoomlens/internal/trace"
	"zoomlens/internal/zoom"
)

// BenchmarkAblationDataplaneAccuracy compares the fixed-memory
// data-plane monitor against the exact pipeline at several table sizes.
func BenchmarkAblationDataplaneAccuracy(b *testing.B) {
	// One campus excerpt, analyzed exactly once.
	r := campus(b)
	type exact struct {
		frames uint64
		pkts   uint64
	}
	truth := map[string]exact{}
	keyOf := func(ft layers.FiveTuple, ssrc uint32, mt MediaType) string {
		return fmt.Sprintf("%s|%d|%d", ft, ssrc, mt)
	}
	for _, id := range r.Analyzer.StreamIDs() {
		sm, _ := r.Analyzer.MetricsFor(id)
		truth[keyOf(id.Flow, id.Key.SSRC, id.Key.Type)] = exact{frames: sm.FramesTotal, pkts: sm.Packets}
	}

	// Re-parse the capture (regenerate deterministically) through the
	// data-plane monitor at each table size.
	for _, slots := range []int{64, 256, 1024, 8192} {
		b.Run(fmt.Sprintf("slots=%d", slots), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mon := dataplane.NewMonitor(dataplane.Config{Slots: slots})
				replayCampusInto(mon)
				// Accuracy: relative frame-count error over streams that
				// survived in the table.
				var relErrSum float64
				var matched int
				for _, s := range mon.Snapshot() {
					_ = s
				}
				for _, id := range r.Analyzer.StreamIDs() {
					sm, _ := r.Analyzer.MetricsFor(id)
					slot, ok := mon.Lookup(id.Flow, id.Key.SSRC, id.Key.Type)
					if !ok || sm.FramesTotal == 0 {
						continue
					}
					matched++
					relErrSum += math.Abs(float64(slot.Frames)-float64(sm.FramesTotal)) / float64(sm.FramesTotal)
				}
				if i == 0 {
					coverage := float64(matched) / float64(len(truth))
					b.ReportMetric(coverage, "stream-coverage")
					if matched > 0 {
						b.ReportMetric(relErrSum/float64(matched), "frame-count-rel-err")
					}
					b.ReportMetric(float64(mon.Collisions), "collisions")
				}
			}
		})
	}
}

// replayCampusInto regenerates the campus fixture's packets and feeds
// the media ones to the data-plane monitor.
func replayCampusInto(mon *dataplane.Monitor) {
	cfg := smallCampus()
	opts := sim.DefaultOptions()
	opts.Seed = cfg.Seed
	opts.Start = cfg.Start
	opts.SkipExternalDelivery = true
	w := sim.NewWorld(opts)
	parser := &layers.Parser{}
	var pkt layers.Packet
	w.Monitor = func(at time.Time, frame []byte) {
		if parser.Parse(frame, &pkt) != nil || !pkt.HasUDP {
			return
		}
		zp, err := zoom.ParsePacket(pkt.Payload, zoom.ModeAuto)
		if err != nil {
			return
		}
		ft, _ := pkt.FiveTuple()
		mon.Process(at, ft, &zp)
	}
	runner := newCampusRunner(cfg, w)
	runner()
}

// newCampusRunner installs the campus schedule and returns a closure
// that runs it — the same sequence RunCampus performs, so the replay
// sees identical packets.
func newCampusRunner(cfg CampusConfig, w *sim.World) func() {
	r := trace.NewRunner(cfg, w)
	r.Install(trace.Schedule(cfg))
	return func() { w.Run(cfg.Start.Add(cfg.Duration)) }
}

// BenchmarkAblationGroupingWithoutDedup disables step 1 of the grouping
// heuristic (every stream record gets a unique ID instead of a unified
// one) and measures over-counting of meetings.
func BenchmarkAblationGroupingWithoutDedup(b *testing.B) {
	opts := sim.DefaultOptions()
	w := sim.NewWorld(opts)
	d := meeting.NewDedup()
	var raw []meeting.StreamObs
	parser := &layers.Parser{}
	var pkt layers.Packet
	w.Monitor = func(at time.Time, frame []byte) {
		if parser.Parse(frame, &pkt) != nil || !pkt.HasUDP {
			return
		}
		zp, err := zoom.ParsePacket(pkt.Payload, zoom.ModeAuto)
		if err != nil || !zp.IsMedia() {
			return
		}
		ft, _ := pkt.FiveTuple()
		obs := meeting.StreamObs{Time: at, Flow: ft, Key: zoom.StreamKey{SSRC: zp.RTP.SSRC, Type: zp.Media.Type}, Seq: zp.RTP.SequenceNumber, TS: zp.RTP.Timestamp}
		d.Observe(obs)
		raw = append(raw, obs)
	}
	// A meeting that switches to P2P: without step 1, the pre- and
	// post-switch halves look like separate meetings.
	m := w.NewMeeting()
	m.EnableP2P(8 * time.Second)
	m.Join(w.NewClient("a", true), sim.DefaultMediaSet())
	m.Join(w.NewClient("b", false), sim.DefaultMediaSet())
	w.Run(opts.Start.Add(25 * time.Second))

	serverIs := func(a netip.Addr) bool { return opts.ZoomNet.Contains(a) }
	clientOf := meeting.ClientOf(serverIs)

	withDedup := len(meeting.Group(d.Records(clientOf)))

	// Ablated: fresh unified ID per (flow, key) — no copy linkage, and
	// clients keyed only by IP+port.
	type fk struct {
		f layers.FiveTuple
		k zoom.StreamKey
	}
	ids := map[fk]meeting.UnifiedID{}
	spans := map[fk][2]time.Time{}
	next := meeting.UnifiedID(1000)
	for _, o := range raw {
		k := fk{o.Flow, o.Key}
		if _, ok := ids[k]; !ok {
			ids[k] = next
			next++
			spans[k] = [2]time.Time{o.Time, o.Time}
		}
		sp := spans[k]
		sp[1] = o.Time
		spans[k] = sp
	}
	var ablated []meeting.StreamRecord
	for k, id := range ids {
		ablated = append(ablated, meeting.StreamRecord{
			Unified: id, Flow: k.f, Key: k.k,
			Start: spans[k][0], End: spans[k][1],
			Client: clientOf(k.f),
		})
	}
	withoutDedup := len(meeting.Group(ablated))

	b.ReportMetric(float64(withDedup), "meetings-with-dedup")
	b.ReportMetric(float64(withoutDedup), "meetings-without-dedup")
	if withDedup != 1 {
		b.Fatalf("with dedup: %d meetings, want 1", withDedup)
	}
	if withoutDedup <= withDedup {
		b.Fatalf("ablation invisible: %d vs %d", withoutDedup, withDedup)
	}
	printReport("Ablation: grouping step 1", fmt.Sprintf(
		"meetings inferred across an SFU→P2P switch: with unified stream IDs %d (correct), without %d (over-count)",
		withDedup, withoutDedup))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = meeting.Group(ablated)
	}
}

// BenchmarkAblationJitterFrameVsPacket quantifies Figure 12: naive
// packet-level interarrival jitter is dominated by intra-frame burst
// spacing, while the frame-level computation isolates network variance.
func BenchmarkAblationJitterFrameVsPacket(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// A clean 30 fps stream of 3-packet frames: network-wise there is
		// (almost) nothing to report.
		frameJ := rtp.NewJitter(90000)
		var packetNaiveMS float64
		var prevArrival time.Time
		var samples int
		at := t0Ablation
		ts := uint32(0)
		const frames = 300
		for f := 0; f < frames; f++ {
			for p := 0; p < 3; p++ {
				arrival := at.Add(time.Duration(p) * 300 * time.Microsecond)
				if p == 0 {
					frameJ.Observe(float64(arrival.UnixNano())/1e9, ts)
				}
				if !prevArrival.IsZero() {
					// Naive: variance proxy = mean |delta - mean-delta|;
					// use deviation from the ideal 11 ms packet spacing.
					d := arrival.Sub(prevArrival).Seconds() * 1000
					packetNaiveMS += math.Abs(d - 33.0/3)
					samples++
				}
				prevArrival = arrival
			}
			at = at.Add(33 * time.Millisecond)
			ts += 2970
		}
		if i == 0 {
			naive := packetNaiveMS / float64(samples)
			frame := frameJ.Seconds() * 1000
			b.ReportMetric(naive, "packet-naive-ms")
			b.ReportMetric(frame, "frame-level-ms")
			if naive < 5*frame+1 {
				b.Fatalf("burstiness should dominate the naive metric: naive=%.3f frame=%.3f", naive, frame)
			}
			printReport("Ablation: jitter computation", fmt.Sprintf(
				"clean 30 fps stream of 3-packet bursts — naive packet interarrival deviation: %.2f ms; RFC 3550 frame-level jitter: %.4f ms",
				naive, frame))
		}
	}
}

// BenchmarkAblationFrameRateMethods shows methods 1 and 2 of §5.2
// agreeing on a healthy stream and diverging under congestion (the
// paper: "In the presence of congestion, the two numbers can
// temporarily diverge before the encoder adjusts the frame rate,
// indicating a network problem").
func BenchmarkAblationFrameRateMethods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := RunValidation(120, 31)
		// During congestion windows, compare delivered (method 1) binned
		// fps against encoder fps implied by QoS... here: against the
		// nominal 28. Divergence metric: max drop of method 1 below the
		// pre-congestion mean while the sender had not yet adapted.
		if i != 0 {
			continue
		}
		var pre, during []float64
		w := v.CongestionWindows[1]
		for _, s := range v.EstimatedFPS {
			switch {
			case s.Time.Before(w.Start) && s.Time.After(w.Start.Add(-20*time.Second)):
				pre = append(pre, s.Value)
			case s.Time.After(w.Start) && s.Time.Before(w.End):
				during = append(during, s.Value)
			}
		}
		if len(pre) == 0 || len(during) == 0 {
			b.Fatal("no samples around congestion window")
		}
		minDuring := during[0]
		for _, x := range during {
			if x < minDuring {
				minDuring = x
			}
		}
		b.ReportMetric(avg(pre), "delivered-fps-pre")
		b.ReportMetric(minDuring, "delivered-fps-min-during")
		printReport("Ablation: frame-rate methods", fmt.Sprintf(
			"delivered fps (method 1): %.1f before congestion, min %.1f during — the dip below the encoder rate is the network signal of §5.2",
			avg(pre), minDuring))
	}
}

// BenchmarkAblationP2PTimeout sweeps the stateful filter's timeout:
// too-short timeouts forget the STUN exchange before Zoom switches to
// P2P (~10+ s later) and miss the flow entirely.
func BenchmarkAblationP2PTimeout(b *testing.B) {
	for _, timeout := range []time.Duration{2 * time.Second, 5 * time.Second, 30 * time.Second, 60 * time.Second} {
		b.Run(fmt.Sprintf("timeout=%s", timeout), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := sim.DefaultOptions()
				opts.Seed = 9
				w := sim.NewWorld(opts)
				filter := capture.NewFilter(capture.Config{
					ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
					CampusNetworks: []netip.Prefix{opts.CampusNet},
					P2PTimeout:     timeout,
				})
				parser := &layers.Parser{}
				var pkt layers.Packet
				var p2pKept, p2pTotal int
				w.Monitor = func(at time.Time, frame []byte) {
					if parser.Parse(frame, &pkt) != nil {
						return
					}
					v := filter.Classify(&pkt, at)
					if pkt.HasUDP && !stun.Is(pkt.Payload) {
						if zp, err := zoom.ParsePacket(pkt.Payload, zoom.ModeAuto); err == nil && !zp.ServerBased {
							p2pTotal++
							if v == capture.KeepP2P {
								p2pKept++
							}
						}
					}
				}
				m := w.NewMeeting()
				m.EnableP2P(12 * time.Second)
				m.Join(w.NewClient("a", true), sim.DefaultMediaSet())
				m.Join(w.NewClient("b", false), sim.DefaultMediaSet())
				w.Run(opts.Start.Add(30 * time.Second))
				if i == 0 && p2pTotal > 0 {
					b.ReportMetric(float64(p2pKept)/float64(p2pTotal), "p2p-capture-rate")
				}
			}
		})
	}
}

var t0Ablation = time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)
