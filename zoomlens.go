// Package zoomlens is a passive measurement toolkit for Zoom traffic,
// implementing "Enabling Passive Measurement of Zoom Performance in
// Production Networks" (Michel et al., IMC 2022) as a reusable Go
// library.
//
// From packet captures alone — no cooperation from clients or servers —
// zoomlens can:
//
//   - detect Zoom traffic, including peer-to-peer meetings, via the
//     published server networks and STUN-based P2P tracking (§4.1);
//   - parse Zoom's proprietary SFU and media encapsulations and the RTP
//     and RTCP inside them (§4.2, Tables 1–3);
//   - group media streams into meetings without any meeting ID in the
//     packets (§4.3); and
//   - compute per-stream performance metrics: media bit rate, frame
//     rate (delivered and encoder-intended), frame size, latency, frame
//     jitter, loss/retransmission estimates, and frame delay (§5).
//
// The package also ships the substrate the paper's evaluation needs:
// pcap I/O, Ethernet/IP/UDP/TCP codecs, RTP/RTCP/STUN codecs, an
// entropy-based header analyzer for protocol reverse engineering, a
// software model of the paper's P4/Tofino capture pipeline, a Zoom
// meeting/campus traffic simulator with QoS ground truth, and an
// experiment harness that regenerates every table and figure of the
// paper (see bench_test.go and EXPERIMENTS.md).
//
// # Quick start
//
//	f, _ := os.Open("campus.pcap")
//	defer f.Close()
//	a := zoomlens.NewAnalyzer(zoomlens.Config{
//		ZoomNetworks: zoomlens.DefaultZoomNetworks(),
//	})
//	if err := a.ReadPCAP(f); err != nil { ... }
//	for _, id := range a.StreamIDs() {
//		m, _ := a.MetricsFor(id)
//		fmt.Println(id.Key, m.FramesTotal, m.LossStats())
//	}
//	for _, meeting := range a.Meetings() {
//		fmt.Println(meeting.ID, meeting.Participants())
//	}
package zoomlens

import (
	"io"
	"net"
	"net/http"
	"net/netip"

	"zoomlens/internal/analysis"
	"zoomlens/internal/capture"
	"zoomlens/internal/core"
	"zoomlens/internal/entropy"
	"zoomlens/internal/flow"
	"zoomlens/internal/infra"
	"zoomlens/internal/media"
	"zoomlens/internal/meeting"
	"zoomlens/internal/metrics"
	"zoomlens/internal/netsim"
	"zoomlens/internal/obs"
	"zoomlens/internal/pcap"
	"zoomlens/internal/qos"
	"zoomlens/internal/rtp"
	"zoomlens/internal/sim"
	"zoomlens/internal/stun"
	"zoomlens/internal/tcprtt"
	"zoomlens/internal/trace"
	"zoomlens/internal/zoom"
)

// Core analysis pipeline (§4–§5).
type (
	// Engine is the common contract of the sequential and parallel
	// pipelines: feed borrowed packet buffers, finish, read the report.
	Engine = core.Engine
	// Analyzer is the end-to-end passive measurement pipeline.
	Analyzer = core.Analyzer
	// ParallelAnalyzer is the sharded multi-core pipeline: five-tuples
	// hash to worker shards, a deterministic merge at Finish yields
	// results byte-identical to the sequential Analyzer.
	ParallelAnalyzer = core.ParallelAnalyzer
	// Config parameterizes an Analyzer.
	Config = core.Config
	// Summary is the Table 6 style capture roll-up.
	Summary = core.Summary
	// MeetingReport rolls stream metrics up to meetings and
	// participants, localizing degradation (§4.3's motivation).
	MeetingReport = core.MeetingReport
	// ParticipantReport is the per-participant quality roll-up.
	ParticipantReport = core.ParticipantReport
)

// NewAnalyzer builds the end-to-end pipeline.
func NewAnalyzer(cfg Config) *Analyzer { return core.NewAnalyzer(cfg) }

// NewParallelAnalyzer builds the sharded pipeline with the given worker
// count; workers <= 0 selects runtime.NumCPU(), workers == 1 degenerates
// to the sequential Analyzer.
func NewParallelAnalyzer(cfg Config, workers int) *ParallelAnalyzer {
	return core.NewParallelAnalyzer(cfg, workers)
}

// RestoreAnalyzer rebuilds an engine from a checkpoint written by
// Engine.Checkpoint. The engine kind and worker count come from the
// checkpoint; cfg supplies the run configuration, which should match
// the original run's for byte-identical resumption.
func RestoreAnalyzer(r io.Reader, cfg Config) (Engine, error) {
	return core.RestoreAnalyzer(r, cfg)
}

// Live observability (metrics endpoint, stage tracing, QoE snapshots).
type (
	// MetricsRegistry collects the pipeline's counters, gauges, and
	// histograms; wire one through Config.Obs and serve it with
	// ServeMetrics.
	MetricsRegistry = obs.Registry
	// MetricLabel is one name=value label on a metric handle.
	MetricLabel = obs.Label
	// MetricCounter is a monotonically increasing metric handle.
	MetricCounter = obs.Counter
	// MetricGauge is a settable instantaneous metric handle.
	MetricGauge = obs.Gauge
	// Tracer receives per-stage wall-clock timings (Config.Tracer).
	Tracer = obs.Tracer
	// StageStats is an in-memory Tracer that renders a timing report.
	StageStats = obs.StageStats
	// MultiTracer fans stage timings out to several tracers.
	MultiTracer = obs.MultiTracer
	// MeetingSnapshot is one meeting's rolling QoE state, emitted as one
	// JSON line per meeting per snapshot interval.
	MeetingSnapshot = core.MeetingSnapshot
	// SnapshotWriter emits JSON-line snapshots on a trace-time cadence.
	SnapshotWriter = core.SnapshotWriter
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewStageStats builds an in-memory stage-timing tracer.
func NewStageStats() *StageStats { return obs.NewStageStats() }

// NewRegistryTracer builds a Tracer that records stage timings as
// counters and histograms in the registry.
func NewRegistryTracer(reg *MetricsRegistry) Tracer { return obs.NewRegistryTracer(reg) }

// ServeMetrics starts an HTTP endpoint on addr exposing the registry in
// Prometheus text format at /metrics, plus expvar and net/http/pprof.
// It returns the server and the bound address (useful with port 0).
func ServeMetrics(addr string, reg *MetricsRegistry) (*http.Server, net.Addr, error) {
	return obs.Serve(addr, reg)
}

// StageTimer times one stage under tr (nil-safe): call the returned
// function when the stage completes.
func StageTimer(tr Tracer, stage string) func() { return obs.Stage(tr, stage) }

// Production hardening (bounded state, panic containment).
type (
	// Quarantine is the forensic ring buffer of frames whose processing
	// panicked; see Config.Quarantine.
	Quarantine = core.Quarantine
	// QuarantinedFrame is one captured offender in a Quarantine.
	QuarantinedFrame = core.QuarantinedFrame
	// FinishedStream is an archived, finalized stream (Compact / idle
	// eviction).
	FinishedStream = core.FinishedStream
)

// NewQuarantine builds a forensic frame ring holding up to capacity
// frames (a default capacity if capacity <= 0).
func NewQuarantine(capacity int) *Quarantine { return core.NewQuarantine(capacity) }

// Zoom wire format (§4.2).
type (
	// ZoomPacket is a fully parsed Zoom UDP payload.
	ZoomPacket = zoom.Packet
	// SFUEncap is the 8-byte Zoom SFU encapsulation.
	SFUEncap = zoom.SFUEncap
	// MediaEncap is the variable-length Zoom media encapsulation.
	MediaEncap = zoom.MediaEncap
	// MediaType is the media encapsulation type byte.
	MediaType = zoom.MediaType
	// Substream classifies (media type, RTP payload type) pairs.
	Substream = zoom.Substream
	// StreamKey identifies a media stream within a flow.
	StreamKey = zoom.StreamKey
)

// Media encapsulation type values (Table 2).
const (
	TypeScreenShare = zoom.TypeScreenShare
	TypeAudio       = zoom.TypeAudio
	TypeVideo       = zoom.TypeVideo
	TypeRTCPSR      = zoom.TypeRTCPSR
	TypeRTCPSRSDES  = zoom.TypeRTCPSRSDES
)

// ParseZoomPacket decodes a Zoom UDP payload in either the server-based
// or P2P layout.
func ParseZoomPacket(payload []byte) (ZoomPacket, error) {
	return zoom.ParsePacket(payload, zoom.ModeAuto)
}

// Capture filtering (§4.1, §6.1).
type (
	// Filter classifies packets per the paper's P4 pipeline (Figure 13).
	Filter = capture.Filter
	// FilterConfig parameterizes the filter.
	FilterConfig = capture.Config
	// Verdict is a filter decision.
	Verdict = capture.Verdict
	// Anonymizer hides campus addresses with a keyed one-way hash.
	Anonymizer = capture.Anonymizer
	// PipelineModel is the Tofino resource model behind Table 5.
	PipelineModel = capture.PipelineModel
)

// NewFilter builds the capture filter.
func NewFilter(cfg FilterConfig) *Filter { return capture.NewFilter(cfg) }

// NewAnonymizer builds a keyed address anonymizer.
func NewAnonymizer(key []byte, campus []netip.Prefix) *Anonymizer {
	return capture.NewAnonymizer(key, campus)
}

// Stream and meeting structure (§4.3, Figure 6).
type (
	// FlowTable tracks flows, streams, and substreams.
	FlowTable = flow.Table
	// StreamStats is per-stream accounting.
	StreamStats = flow.StreamStats
	// MediaStreamID identifies one observed stream.
	MediaStreamID = flow.MediaStreamID
	// Dedup detects stream copies (grouping step 1).
	Dedup = meeting.Dedup
	// Meeting is an inferred meeting (grouping step 2).
	Meeting = meeting.Meeting
	// UnifiedID identifies a logical stream across copies.
	UnifiedID = meeting.UnifiedID
)

// NewFlowTable returns an empty flow/stream table.
func NewFlowTable() *FlowTable { return flow.NewTable() }

// NewDedup returns a duplicate-stream detector.
func NewDedup() *Dedup { return meeting.NewDedup() }

// Metrics (§5).
type (
	// StreamMetrics computes every per-stream metric of Table 4.
	StreamMetrics = metrics.StreamMetrics
	// Series is a metric time series.
	Series = metrics.Series
	// Sample is one metric sample.
	Sample = metrics.Sample
	// CopyMatcher produces RTT samples from stream copies (§5.3).
	CopyMatcher = metrics.CopyMatcher
	// TCPRTTTracker measures control-connection RTTs (§5.3 method 2).
	TCPRTTTracker = tcprtt.Tracker
	// Frame is one reassembled media frame.
	Frame = metrics.Frame
	// StallDetector predicts playback stalls from frame delay vs
	// packetization time (§5.5).
	StallDetector = metrics.StallDetector
	// TalkTracker quantifies speaking time from the audio substream
	// split (§4.2.3).
	TalkTracker = metrics.TalkTracker
	// TalkStats summarizes a participant's speaking behaviour.
	TalkStats = metrics.TalkStats
	// ClockRateEstimate is the §5.2 clock-rate sweep result.
	ClockRateEstimate = metrics.ClockRateEstimate
	// FrameObservation is one (arrival, RTP timestamp) pair.
	FrameObservation = metrics.FrameObservation
)

// InferClockRate sweeps candidate RTP clock rates over frame
// observations — the §5.2 methodology that discovered Zoom's 90 kHz
// video clock.
func InferClockRate(frames []FrameObservation) (ClockRateEstimate, bool) {
	return metrics.InferClockRate(frames)
}

// GenerateLuaDissector emits the Wireshark plugin (Appendix C),
// generated from the implemented wire format.
func GenerateLuaDissector() string { return zoom.GenerateLuaDissector() }

// GenerateP4 emits the capture-filter P4 program (§6.1, Figure 13) for
// the given server prefixes.
func GenerateP4(zoomNets []netip.Prefix, p2pTableEntries int) string {
	return capture.GenerateP4(zoomNets, p2pTableEntries)
}

// NewStreamMetrics builds a per-stream metric engine.
func NewStreamMetrics(mt MediaType) *StreamMetrics { return metrics.NewStreamMetrics(mt) }

// Protocol codecs.
type (
	// RTPPacket is a decoded RTP packet.
	RTPPacket = rtp.Packet
	// RTCPCompound is a decoded RTCP compound packet.
	RTCPCompound = rtp.CompoundPacket
	// STUNMessage is a decoded STUN message.
	STUNMessage = stun.Message
	// PcapReader reads classic libpcap streams.
	PcapReader = pcap.Reader
	// PcapWriter writes classic libpcap streams.
	PcapWriter = pcap.Writer
)

// Entropy-based header analysis (§4.2.1, Figures 3–5).
type (
	// EntropyAnalysis classifies one byte-range value sequence.
	EntropyAnalysis = entropy.Analysis
	// FieldClass is random / identifier / counter / constant / mixed.
	FieldClass = entropy.FieldClass
)

// EntropySweep classifies 1/2/4-byte ranges at every offset of a flow's
// payloads.
func EntropySweep(payloads [][]byte, maxOffset int) []EntropyAnalysis {
	return entropy.Sweep(payloads, maxOffset)
}

// FindRTPHeaders scans payloads for the RTP header signature (a 2-byte
// counter, a 4-byte counter, and a 4-byte identifier back to back).
func FindRTPHeaders(payloads [][]byte, maxOffset int) []entropy.RTPSignature {
	return entropy.FindRTP(payloads, maxOffset)
}

// Simulation substrate (the paper's testbed stand-in).
type (
	// World is the discrete-event Zoom/campus simulator.
	World = sim.World
	// WorldOptions configures a World.
	WorldOptions = sim.Options
	// SimClient is one simulated participant endpoint.
	SimClient = sim.Client
	// SimMeeting is one simulated meeting.
	SimMeeting = sim.Meeting
	// MediaSet selects the media a participant sends.
	MediaSet = sim.MediaSet
	// Congestion is a scheduled link impairment episode.
	Congestion = netsim.Congestion
	// QoSRecorder is the SDK-like ground-truth statistics log.
	QoSRecorder = qos.Recorder
	// CampusConfig shapes a campus-scale workload.
	CampusConfig = trace.Config
	// MeetingPlan is one scheduled campus meeting.
	MeetingPlan = trace.MeetingPlan
	// VideoConfig parameterizes the video source model.
	VideoConfig = media.VideoConfig
)

// NewWorld builds a simulated campus world.
func NewWorld(opts WorldOptions) *World { return sim.NewWorld(opts) }

// DefaultWorldOptions is a healthy two-leg campus topology.
func DefaultWorldOptions() WorldOptions { return sim.DefaultOptions() }

// DefaultMediaSet is a camera+microphone participant.
func DefaultMediaSet() MediaSet { return sim.DefaultMediaSet() }

// DefaultCampusConfig is a laptop-scale 12-hour campus day.
func DefaultCampusConfig() CampusConfig { return trace.DefaultConfig() }

// CampusSchedule draws a meeting plan for a campus day.
func CampusSchedule(cfg CampusConfig) []MeetingPlan { return trace.Schedule(cfg) }

// Statistics toolkit.
type (
	// CDF is an empirical distribution.
	CDF = analysis.CDF
	// TextTable renders aligned plain-text tables.
	TextTable = analysis.Table
)

// NewCDF builds an empirical CDF.
func NewCDF(samples []float64) *CDF { return analysis.NewCDF(samples) }

// PlotCDFs renders labeled CDFs as an ASCII chart (the terminal
// rendering of the Figure 15 panels).
func PlotCDFs(series map[string]*CDF, xMax float64, width, height int) string {
	return analysis.PlotCDFs(series, xMax, width, height)
}

// Pearson computes the correlation coefficient of paired samples.
func Pearson(x, y []float64) float64 { return analysis.Pearson(x, y) }

// Infrastructure survey (Appendix B, Table 7).
type (
	// Inventory is the modeled Zoom server footprint.
	Inventory = infra.Inventory
	// SurveyResult is the Table 7 reproduction.
	SurveyResult = infra.SurveyResult
)

// BuildInventory constructs the synthetic Zoom footprint.
func BuildInventory(seed int64) *Inventory { return infra.Build(seed) }

// DefaultZoomNetworks returns the modeled Zoom server prefixes (the
// stand-in for Zoom's published list; the simulator's servers live in
// the first of these).
func DefaultZoomNetworks() []netip.Prefix {
	inv := infra.Build(1)
	out := make([]netip.Prefix, 0, len(inv.Networks))
	for _, n := range inv.Networks {
		out = append(out, n.Prefix)
	}
	return out
}
