// Quickstart: simulate a two-minute Zoom meeting, capture it at the
// campus border, and analyze it with the zoomlens pipeline — streams,
// meetings, and per-stream performance metrics, all from packets alone.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"net/netip"
	"time"

	"zoomlens"
)

func main() {
	// 1. A simulated world stands in for real clients, the Zoom SFU,
	//    and the campus network. The monitor callback is the border tap.
	opts := zoomlens.DefaultWorldOptions()
	world := zoomlens.NewWorld(opts)

	analyzer := zoomlens.NewAnalyzer(zoomlens.Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	})
	world.Monitor = analyzer.Packet

	// 2. Two on-campus participants meet for two minutes.
	meeting := world.NewMeeting()
	meeting.Join(world.NewClient("alice", true), zoomlens.DefaultMediaSet())
	meeting.Join(world.NewClient("bob", true), zoomlens.DefaultMediaSet())
	world.Run(opts.Start.Add(2 * time.Minute))
	analyzer.Finish()

	// 3. What did passive analysis recover?
	sum := analyzer.Summary()
	fmt.Printf("capture: %d packets, %d flows, %d media streams over %s\n",
		sum.Packets, sum.Flows, sum.Streams, sum.Duration.Round(time.Second))

	for _, m := range analyzer.Meetings() {
		fmt.Printf("meeting %d: %d participants, %d logical streams, %s–%s\n",
			m.ID, m.Participants(), len(m.Streams),
			m.Start.Format("15:04:05"), m.End.Format("15:04:05"))
	}

	fmt.Println("\nper-stream metrics:")
	for _, id := range analyzer.StreamIDs() {
		sm, _ := analyzer.MetricsFor(id)
		if sm.Packets < 100 {
			continue
		}
		loss := sm.LossStats()
		var fps float64
		if n := len(sm.FrameRate.Samples); n > 0 {
			fps = sm.FrameRate.Samples[n-1].Value
		}
		fmt.Printf("  %-18s %-45s pkts=%-6d frames=%-5d fps≈%-5.1f mediaB=%-8d lost=%d dup=%d\n",
			id.Key, id.Flow, sm.Packets, sm.FramesTotal, fps, sm.MediaBytes,
			loss.EstimatedLost, loss.Duplicates)
	}

	// 4. Latency from stream copies (§5.3 method 1): the monitor sees
	//    each uplink stream come back from the SFU toward the other
	//    participant.
	if n := len(analyzer.Copies.Samples); n > 0 {
		var sum time.Duration
		for _, s := range analyzer.Copies.Samples {
			sum += s.RTT
		}
		fmt.Printf("\nmonitor↔SFU RTT: %d samples, mean %s\n",
			n, (sum / time.Duration(n)).Round(100*time.Microsecond))
	}
}
