// Validation reproduces the paper's §5 controlled experiment (Figure
// 10): a two-party call with two injected cross-traffic episodes,
// analyzed passively and compared against the receiving client's own
// QoS statistics — frame rate, latency, and jitter.
//
// Run with:
//
//	go run ./examples/validation
package main

import (
	"fmt"
	"time"

	"zoomlens"
)

func main() {
	const seconds = 300 // a 5-minute call, like the paper's runs
	fmt.Printf("running a %ds two-party call with two congestion episodes...\n\n", seconds)
	v := zoomlens.RunValidation(seconds, 1)

	// Figure 10a: frame rate, estimate vs ground truth, printed every
	// ten seconds with congestion windows marked.
	fmt.Println("Figure 10a — frame rate (fps): passive estimate vs Zoom QoS data")
	fmt.Println("  t[s]   estimate   zoom-qos")
	qosFPS := map[int64]float64{}
	for _, s := range v.QoSFPS {
		qosFPS[s.Time.Unix()] = s.Value
	}
	inCongestion := func(t time.Time) string {
		for _, w := range v.CongestionWindows {
			if t.After(w.Start) && t.Before(w.End) {
				return "  << cross-traffic"
			}
		}
		return ""
	}
	var start time.Time
	if len(v.EstimatedFPS) > 0 {
		start = v.EstimatedFPS[0].Time
	}
	var mae = v.FPSMae
	for i, s := range v.EstimatedFPS {
		if i%10 != 0 {
			continue
		}
		q, ok := qosFPS[s.Time.Unix()]
		if !ok {
			continue
		}
		fmt.Printf("  %4d   %8.1f   %8.1f%s\n", int(s.Time.Sub(start).Seconds()), s.Value, q, inCongestion(s.Time))
	}
	fmt.Printf("  mean absolute error: %.2f fps\n\n", mae)

	// Figure 10b: latency. The passive estimate produces a sample per
	// matched packet pair; Zoom refreshes only every five seconds.
	fmt.Println("Figure 10b — latency")
	var estSum float64
	for _, s := range v.EstimatedRTTMS {
		estSum += s.Value
	}
	var qosSum float64
	for _, s := range v.QoSLatencyMS {
		qosSum += s.Value
	}
	fmt.Printf("  estimate: %6d samples, mean %5.1f ms   (RTP copy matching at the monitor)\n",
		len(v.EstimatedRTTMS), estSum/float64(len(v.EstimatedRTTMS)))
	fmt.Printf("  zoom qos: %6d samples, mean %5.1f ms   (5-second refresh)\n\n",
		len(v.QoSLatencyMS), qosSum/float64(len(v.QoSLatencyMS)))

	// Figure 10c: jitter. The paper's surprise: Zoom's own jitter metric
	// never responds to congestion; the RFC 3550 frame-level estimate
	// does.
	maxEst, maxQoS := 0.0, 0.0
	for _, s := range v.EstimatedJitterMS {
		if s.Value > maxEst {
			maxEst = s.Value
		}
	}
	for _, s := range v.QoSJitterMS {
		if s.Value > maxQoS {
			maxQoS = s.Value
		}
	}
	fmt.Println("Figure 10c — frame-level jitter")
	fmt.Printf("  estimate max: %5.1f ms  (responds during both congestion episodes)\n", maxEst)
	fmt.Printf("  zoom qos max: %5.2f ms  (stays flat — the mismatch the paper reports)\n", maxQoS)
}
