// Campus reproduces the paper's §6 campus study at configurable scale:
// it simulates a working-day Zoom workload at a campus border, runs the
// full passive analysis pipeline over the capture, and prints the
// campus-trace tables and figures (Tables 2/3/6, Figures 14–17).
//
// Run with (a ~15-minute excerpt by default; raise -duration and -rate
// for bigger runs):
//
//	go run ./examples/campus [-duration 15m] [-rate 20] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math"
	"strings"
	"time"

	"zoomlens"
	"zoomlens/internal/analysis"
)

// indent prefixes every line of s.
func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

func main() {
	var (
		duration = flag.Duration("duration", 15*time.Minute, "simulated capture duration")
		rate     = flag.Float64("rate", 20, "peak meeting arrivals per hour")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := zoomlens.DefaultCampusConfig()
	cfg.Seed = *seed
	cfg.Start = time.Date(2022, 5, 5, 9, 55, 0, 0, time.UTC) // catch the 10:00 spike
	cfg.Duration = *duration
	cfg.MeetingsPerHourPeak = *rate
	cfg.BackgroundPPS = 3000

	fmt.Printf("simulating a campus border capture: %s from %s, peak %.0f meetings/h...\n\n",
		cfg.Duration, cfg.Start.Format("15:04"), cfg.MeetingsPerHourPeak)
	r := zoomlens.RunCampus(cfg)

	fmt.Print(zoomlens.Table6(r), "\n")
	fmt.Print(zoomlens.Table2(r), "\n")
	fmt.Print(zoomlens.Table3(r), "\n")

	// Figure 14: media bit rate per type over time.
	fmt.Println("Figure 14 — media bit rate per type (Mbit/s), 1-minute resolution")
	series := r.MediaRateSeries()
	idx := map[zoomlens.MediaType]map[int64]float64{}
	for mt, ss := range series {
		idx[mt] = map[int64]float64{}
		for _, s := range ss {
			idx[mt][s.Time.Unix()] = s.Value
		}
	}
	fmt.Println("  time      video   audio  screen")
	for off := int64(0); off < int64(cfg.Duration/time.Second); off += 60 {
		ts := cfg.Start.Add(time.Duration(off) * time.Second)
		var v, a, s float64
		for k := ts.Unix(); k < ts.Unix()+60; k++ {
			v += idx[zoomlens.TypeVideo][k]
			a += idx[zoomlens.TypeAudio][k]
			s += idx[zoomlens.TypeScreenShare][k]
		}
		fmt.Printf("  %s  %6.2f  %6.2f  %6.2f\n", ts.Format("15:04:05"), v/60, a/60, s/60)
	}
	fmt.Println()

	// Figure 15: distributions per media type.
	d := r.Distributions(100)
	q := func(vals []float64, at float64) float64 {
		if len(vals) == 0 {
			return math.NaN()
		}
		return zoomlens.NewCDF(vals).Quantile(at)
	}
	fmt.Println("Figure 15 — per-type distributions (p25 / p50 / p75)")
	fmt.Printf("  15a data rate [Mbit/s]: video %.3f/%.3f/%.3f   audio %.3f/%.3f/%.3f   screen %.3f/%.3f/%.3f\n",
		q(d.DataRateMbps[zoomlens.TypeVideo], .25), q(d.DataRateMbps[zoomlens.TypeVideo], .5), q(d.DataRateMbps[zoomlens.TypeVideo], .75),
		q(d.DataRateMbps[zoomlens.TypeAudio], .25), q(d.DataRateMbps[zoomlens.TypeAudio], .5), q(d.DataRateMbps[zoomlens.TypeAudio], .75),
		q(d.DataRateMbps[zoomlens.TypeScreenShare], .25), q(d.DataRateMbps[zoomlens.TypeScreenShare], .5), q(d.DataRateMbps[zoomlens.TypeScreenShare], .75))
	fmt.Printf("  15b frame rate [fps]:   video %.1f/%.1f/%.1f   screen %.1f/%.1f/%.1f\n",
		q(d.FrameRate[zoomlens.TypeVideo], .25), q(d.FrameRate[zoomlens.TypeVideo], .5), q(d.FrameRate[zoomlens.TypeVideo], .75),
		q(d.FrameRate[zoomlens.TypeScreenShare], .25), q(d.FrameRate[zoomlens.TypeScreenShare], .5), q(d.FrameRate[zoomlens.TypeScreenShare], .75))
	fmt.Printf("  15c frame size [B]:     video %.0f/%.0f/%.0f   screen %.0f/%.0f/%.0f\n",
		q(d.FrameSize[zoomlens.TypeVideo], .25), q(d.FrameSize[zoomlens.TypeVideo], .5), q(d.FrameSize[zoomlens.TypeVideo], .75),
		q(d.FrameSize[zoomlens.TypeScreenShare], .25), q(d.FrameSize[zoomlens.TypeScreenShare], .5), q(d.FrameSize[zoomlens.TypeScreenShare], .75))
	fmt.Printf("  15d video jitter [ms]:  %.2f/%.2f/%.2f; share >40 ms: %.3f\n",
		q(d.JitterMS[zoomlens.TypeVideo], .25), q(d.JitterMS[zoomlens.TypeVideo], .5), q(d.JitterMS[zoomlens.TypeVideo], .75),
		1-zoomlens.NewCDF(d.JitterMS[zoomlens.TypeVideo]).At(40))
	fmt.Println()
	fmt.Println("  15a as CDFs (data rate, Mbit/s):")
	fmt.Print(indent(analysis.PlotCDFs(map[string]*analysis.CDF{
		"video":  zoomlens.NewCDF(d.DataRateMbps[zoomlens.TypeVideo]),
		"audio":  zoomlens.NewCDF(d.DataRateMbps[zoomlens.TypeAudio]),
		"screen": zoomlens.NewCDF(d.DataRateMbps[zoomlens.TypeScreenShare]),
	}, 0, 64, 12), "  "))
	fmt.Println()

	// Figure 16: the absence of correlation.
	rBit, rFps, n := r.JitterCorrelation()
	fmt.Printf("Figure 16 — Pearson r over %d stream-seconds: jitter↔bitrate %.3f, jitter↔frame-rate %.3f\n",
		n, rBit, rFps)
	fmt.Println("  (weak correlations: low rate/fps is mostly user-driven, not network-driven)")
	fmt.Println()

	// Figure 17: all vs Zoom packet rates.
	var all, zm float64
	for _, s := range r.AllPerSecond {
		all += s.Value
	}
	for _, s := range r.ZoomPerSecond {
		zm += s.Value
	}
	secs := float64(len(r.AllPerSecond))
	fmt.Printf("Figure 17 — monitor packet rate: all %.0f pps, Zoom %.0f pps (%.1f%%)\n",
		all/secs, zm/secs, 100*zm/all)
}
