// P2pdetect walks through §4.1's peer-to-peer connection detection: a
// two-party meeting starts server-based, exchanges STUN with a zone
// controller, switches to a direct connection from the STUN-announced
// port, and reverts to the SFU when a third participant joins — while a
// stateful filter at the border classifies every packet in real time.
//
// Run with:
//
//	go run ./examples/p2pdetect
package main

import (
	"fmt"
	"net/netip"
	"time"

	"zoomlens"
	"zoomlens/internal/layers"
)

func main() {
	opts := zoomlens.DefaultWorldOptions()
	world := zoomlens.NewWorld(opts)

	// The same stateful filter the capture pipeline uses (Figure 13).
	filter := zoomlens.NewFilter(zoomlens.FilterConfig{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	})

	parser := &layers.Parser{}
	var pkt layers.Packet
	counts := map[string]int{}
	var events []string
	lastVerdict := ""
	world.Monitor = func(at time.Time, frame []byte) {
		if parser.Parse(frame, &pkt) != nil {
			return
		}
		v := filter.Classify(&pkt, at)
		counts[v.String()]++
		if v.String() != lastVerdict {
			events = append(events, fmt.Sprintf("%s  first %-7s packet  %s:%d -> %s:%d",
				at.Format("15:04:05.000"), v, pkt.SrcAddr(), pkt.SrcPort(), pkt.DstAddr(), pkt.DstPort()))
			lastVerdict = v.String()
		}
	}

	meeting := world.NewMeeting()
	meeting.EnableP2P(10 * time.Second)
	alice := world.NewClient("alice", true)
	bob := world.NewClient("bob", false) // off campus: P2P media crosses the border
	meeting.Join(alice, zoomlens.DefaultMediaSet())
	meeting.Join(bob, zoomlens.DefaultMediaSet())
	world.Run(opts.Start.Add(20 * time.Second))

	fmt.Println("phase 1: server-based meeting + STUN exchange + P2P switch")
	for _, e := range events {
		fmt.Println("  " + e)
	}
	fmt.Printf("  meeting is P2P: %v\n\n", meeting.IsP2P())

	// A third participant forces the revert; the meeting then stays on
	// the SFU even after they leave (§3).
	events = events[:0]
	lastVerdict = ""
	carol := world.NewClient("carol", true)
	meeting.Join(carol, zoomlens.DefaultMediaSet())
	world.Run(opts.Start.Add(25 * time.Second))
	meeting.Leave(carol)
	world.Run(opts.Start.Add(35 * time.Second))

	fmt.Println("phase 2: third join forces revert to the SFU")
	for i, e := range events {
		if i >= 4 {
			break
		}
		fmt.Println("  " + e)
	}
	fmt.Printf("  meeting is P2P after revert (must stay false): %v\n\n", meeting.IsP2P())

	fmt.Println("filter verdict totals:")
	for _, k := range []string{"server", "stun", "p2p", "drop"} {
		fmt.Printf("  %-7s %d\n", k, counts[k])
	}
	fmt.Printf("armed P2P endpoints remaining in the table: %d\n", filter.P2PTableLen())
}
