package zoomlens

// Leak-gated soak harness for continuous operation: a streamed (never
// materialized) synthetic workload with steady stream churn runs
// through the production driver — rotation, full + delta checkpoint
// chain, idle eviction, finished-archive cap all on — on a compressed
// trace clock. The gates are the continuous-operation claims: memory
// bounded (no growth retained after the run), goroutines flat, the
// checkpoint chain active, and incremental checkpoints materially
// cheaper than full snapshots at production stream counts.
//
// Plain `go test` runs a laptop-scale shape; `make soak-smoke` sets
// BENCH_SOAK_OUT to run the full 100k-stream shape and snapshot the
// numbers into BENCH_soak.json.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/netip"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"zoomlens/internal/cliobs"
	"zoomlens/internal/engine"
	"zoomlens/internal/layers"
	"zoomlens/internal/pcap"
	"zoomlens/internal/rtp"
	"zoomlens/internal/trace"
	"zoomlens/internal/zoom"
)

// readRSSKB returns the process resident set in kB from /proc, or 0
// where /proc is unavailable (the heap gate below does not depend on
// it).
func readRSSKB() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				n, _ := strconv.ParseInt(fields[0], 10, 64)
				return n
			}
		}
	}
	return 0
}

// heapInUse returns post-GC live heap bytes.
func heapInUse() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func TestBenchSoakJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: soak harness")
	}
	out := os.Getenv("BENCH_SOAK_OUT")
	fullShape := out != ""

	// The laptop shape keeps plain `go test` fast; the soak-smoke shape
	// holds 100k+ concurrent streams live through the driver.
	streams, packets := 2000, 100_000
	if fullShape {
		streams, packets = 100_000, 1_500_000
	}

	goroutinesBefore := runtime.NumGoroutine()
	heapBefore := heapInUse()
	rssBefore := readRSSKB()

	gcfg := trace.DefaultStreamConfig()
	gcfg.Streams = streams
	gcfg.Packets = packets
	gcfg.Interval = 50 * time.Microsecond
	gcfg.ChurnEvery = 64
	gen, err := trace.NewStreamGen(gcfg)
	if err != nil {
		t.Fatal(err)
	}

	// Cadences scale with the trace span so both shapes exercise every
	// mechanism: several windows, several fulls, an order of magnitude
	// more deltas, and idle sweeps that actually catch churned streams.
	span := time.Duration(packets) * gcfg.Interval
	dir := t.TempDir()
	f := &engine.Flags{
		Obs:                &cliobs.Flags{},
		Workers:            4,
		Checkpoint:         dir + "/state.zlcp",
		CheckpointInterval: span / 6,
		CheckpointDelta:    span / 60,
		CheckpointKeep:     2,
		Rotate:             span / 3,
		RotateOut:          dir + "/window",
		FlowTTL:            span / 10,
		MaxFinished:        streams,
	}

	// Sample peak RSS from inside the record source — the driver owns
	// the loop, so this is the only hook that sees the run mid-flight.
	peakRSS := rssBefore
	sampled := 0
	next := func(rec *pcap.Record) error {
		sampled++
		if sampled%50_000 == 0 {
			if rss := readRSSKB(); rss > peakRSS {
				peakRSS = rss
			}
		}
		return gen.Next(rec)
	}

	start := time.Now()
	run, err := f.RunFrom([]netip.Prefix{gcfg.ZoomNet}, next, func() bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	run.Close()
	if rss := readRSSKB(); rss > peakRSS {
		peakRSS = rss
	}

	summary := run.Analyzer.Summary()
	if summary.Packets == 0 {
		t.Fatal("soak run analyzed nothing")
	}
	fulls, deltas, rotations := run.Checkpoints, run.DeltaCheckpoints, run.Rotations
	if fulls < 2 {
		t.Errorf("checkpoint chain wrote %d fulls, want >= 2", fulls)
	}
	if deltas < 3 {
		t.Errorf("checkpoint chain wrote %d deltas, want >= 3", deltas)
	}
	if rotations < 1 {
		t.Errorf("rotation never fired (%d windows)", rotations)
	}
	evictions := summary.EvictedFlows + summary.EvictedStreams
	if evictions == 0 {
		t.Error("churned soak evicted nothing: idle eviction inactive")
	}

	// Leak gates. Goroutines must return to the pre-run baseline, and
	// live heap must return near it once the run's result is released —
	// any per-packet or per-window state retained past the run is a leak
	// this catches at 1.5M packets.
	run = nil
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines not flat after soak: %d vs %d baseline\n%s",
				runtime.NumGoroutine(), goroutinesBefore, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
	heapAfter := heapInUse()
	const heapCeiling = 256 << 20
	if heapAfter > heapBefore+heapCeiling {
		t.Errorf("live heap grew %d MB across the soak (ceiling 256 MB): retained state leaked",
			(heapAfter-heapBefore)>>20)
	}

	// Incremental-checkpoint economics at the soak's stream count: a
	// full snapshot of every stream versus a delta record after ~1% of
	// streams changed. The steady-state claim is that delta cost scales
	// with churn, not with total streams.
	a := checkpointStateAnalyzer(t, streams)
	fullMS := bestEncodeMS(t, 3, a.Checkpoint)
	touchStreams(t, a, streams/100)
	deltaMS := bestEncodeMS(t, 3, a.CheckpointDelta)
	ratio := fullMS / deltaMS

	report := map[string]any{
		"streams":              streams,
		"packets":              packets,
		"wall_seconds":         wall.Seconds(),
		"packets_per_second":   float64(packets) / wall.Seconds(),
		"full_checkpoints":     fulls,
		"delta_checkpoints":    deltas,
		"rotations":            rotations,
		"evictions":            evictions,
		"rss_before_kb":        rssBefore,
		"rss_peak_kb":          peakRSS,
		"heap_before_bytes":    heapBefore,
		"heap_after_bytes":     heapAfter,
		"full_encode_ms":       fullMS,
		"delta_encode_ms":      deltaMS,
		"delta_speedup":        ratio,
		"delta_speedup_floor":  5,
		"goroutines_baseline":  goroutinesBefore,
		"goroutines_after":     runtime.NumGoroutine(),
		"touched_stream_share": 0.01,
	}

	if fullShape {
		if ratio < 5 {
			t.Errorf("delta checkpoint only %.1fx cheaper than full at %d streams (floor 5x): full %.2fms, delta %.2fms",
				ratio, streams, fullMS, deltaMS)
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(out, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	} else if ratio < 2 {
		// The laptop shape still sanity-checks the scaling direction.
		t.Errorf("delta checkpoint not cheaper than full at %d streams: full %.2fms, delta %.2fms",
			streams, fullMS, deltaMS)
	}
	t.Logf("soak: %d streams, %d packets in %.1fs (%.0f pkt/s); %d fulls + %d deltas; full %.2fms vs delta %.2fms (%.1fx); RSS %d -> peak %d MB",
		streams, packets, wall.Seconds(), float64(packets)/wall.Seconds(),
		fulls, deltas, fullMS, deltaMS, ratio, rssBefore>>10, peakRSS>>10)
}

// bestEncodeMS times encode best-of-n (the minimum is the least noisy
// estimator for a deterministic CPU-bound encode).
func bestEncodeMS(t *testing.T, n int, encode func(io.Writer) error) float64 {
	t.Helper()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := encode(io.Discard); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / 1e6
}

// touchStreams dirties the first n streams of a checkpointStateAnalyzer
// by feeding each one more packet with the identities the builder used
// (src pattern keyed on the stream index, SSRC s+1).
func touchStreams(t *testing.T, a *Analyzer, n int) {
	t.Helper()
	dst := netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, 113, 7}), 8801)
	at := time.Date(2022, 3, 1, 12, 30, 0, 0, time.UTC)
	const p = 4 // continues the builder's per-stream sequence
	for s := 0; s < n; s++ {
		src := netip.AddrPortFrom(
			netip.AddrFrom4([4]byte{10, byte(s >> 10 & 0x3f), byte(s >> 4 & 0x3f), byte(1 + s&0xf)}),
			uint16(20000+s%16),
		)
		zp := zoom.Packet{
			ServerBased: true,
			SFU:         zoom.SFUEncap{Type: zoom.SFUTypeMedia, Sequence: p, Direction: zoom.DirToSFU},
			Media: zoom.MediaEncap{
				Type:      zoom.TypeVideo,
				Sequence:  p,
				Timestamp: p * 3000,
			},
			RTP: rtp.Packet{
				Header: rtp.Header{
					PayloadType:    98,
					SequenceNumber: p,
					Timestamp:      p * 3000,
					SSRC:           uint32(s + 1),
				},
				Payload: []byte{0xde, 0xad, 0xbe, 0xef},
			},
		}
		payload, err := zp.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		a.Packet(at, layers.EthernetIPv4UDP(src, dst, 64, payload))
	}
}
