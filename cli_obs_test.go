package zoomlens

// CLI-level observability integration: the live-measurement flags must
// not change any final output byte, the snapshot stream must be valid
// JSON lines, and the /metrics endpoint must answer while a tool is
// mid-capture.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// stdoutOf runs a tool keeping stdout and stderr apart (runTool combines
// them, which would fold the status JSON into the differential bytes).
func stdoutOf(t *testing.T, dir, name string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, name), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

// TestCLISnapshotsDoNotChangeReport is the CLI half of the differential
// gate: at one worker and at four, zoomqoe's stdout must be
// byte-identical with and without -snapshot-interval, the snapshot
// stream must be valid JSON lines, and the sequential and parallel
// snapshot streams must match each other.
func TestCLISnapshotsDoNotChangeReport(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	pcapPath := filepath.Join(work, "meeting.pcap")
	runTool(t, bin, "zoomsim", "-o", pcapPath, "-mode", "meeting", "-duration", "30s", "-congest")

	snapFiles := make(map[string]string)
	for _, workers := range []string{"1", "4"} {
		base, _ := stdoutOf(t, bin, "zoomqoe", "-i", pcapPath, "-what", "series", "-workers", workers)
		if strings.Count(base, "\n") < 2 {
			t.Fatalf("workers=%s baseline produced no series:\n%s", workers, base)
		}
		snap := filepath.Join(work, "snaps-"+workers+".jsonl")
		snapFiles[workers] = snap
		got, stderr := stdoutOf(t, bin, "zoomqoe", "-i", pcapPath, "-what", "series", "-workers", workers,
			"-snapshot-interval", "2s", "-snapshot-out", snap, "-trace")
		if got != base {
			t.Errorf("workers=%s: -snapshot-interval changed the report", workers)
		}
		if !strings.Contains(stderr, "ingest") || !strings.Contains(stderr, "snapshot") {
			t.Errorf("workers=%s: -trace report missing stages:\n%s", workers, stderr)
		}
		checkSnapshotFile(t, snap)
	}
	seq, err := os.ReadFile(snapFiles["1"])
	if err != nil {
		t.Fatal(err)
	}
	par, err := os.ReadFile(snapFiles["4"])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, par) {
		t.Errorf("snapshot streams diverge between workers=1 and workers=4:\n--- 1\n%s--- 4\n%s", seq, par)
	}
}

// checkSnapshotFile validates a JSON-lines snapshot file: several lines,
// each one a plausible per-meeting snapshot.
func checkSnapshotFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected several snapshot lines, got %d:\n%s", len(lines), data)
	}
	for _, ln := range lines {
		var ms MeetingSnapshot
		if err := json.Unmarshal([]byte(ln), &ms); err != nil {
			t.Fatalf("snapshot line does not parse: %v\n%s", err, ln)
		}
		if ms.Time.IsZero() || ms.Meeting <= 0 || ms.Streams <= 0 || ms.Packets == 0 {
			t.Fatalf("implausible snapshot: %s", ln)
		}
	}
}

// TestCLILiveMetricsEndpoint feeds zoomqoe a pcap over stdin, holds the
// pipe open halfway through, and scrapes the -metrics-addr endpoint
// while the tool is demonstrably mid-capture.
func TestCLILiveMetricsEndpoint(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	pcapPath := filepath.Join(work, "meeting.pcap")
	runTool(t, bin, "zoomsim", "-o", pcapPath, "-mode", "meeting", "-duration", "20s")
	data, err := os.ReadFile(pcapPath)
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(filepath.Join(bin, "zoomqoe"),
		"-i", "-", "-what", "loss", "-workers", "2", "-metrics-addr", "127.0.0.1:0")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Wait()
	defer stdin.Close()

	// The tool announces the bound (ephemeral) address on stderr.
	sc := bufio.NewScanner(stderrPipe)
	addr := ""
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on http://"); i >= 0 {
			addr = strings.TrimSuffix(line[i+len("listening on http://"):], "/metrics")
			break
		}
	}
	if addr == "" {
		t.Fatalf("no listening address on stderr (scan error: %v)", sc.Err())
	}
	go io.Copy(io.Discard, stderrPipe)

	// Feed half the capture; the pipe stays open so the tool is
	// provably still ingesting when the scrape lands.
	if _, err := stdin.Write(data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	// Poll until the packet counter is visibly positive: the scrape can
	// land before the tool has drained the pipe buffer.
	var body string
	var mid float64
	deadline := time.Now().Add(10 * time.Second)
	for {
		body = scrape(t, "http://"+addr+"/metrics")
		fmt.Sscanf(findLine(body, "zoomlens_packets_total "), "zoomlens_packets_total %g", &mid)
		if mid > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if mid <= 0 {
		t.Errorf("mid-capture zoomlens_packets_total never went positive")
	}
	for _, want := range []string{
		"zoomlens_decode_stage_packets_total",
		`zoomlens_state_occupancy{shard="0"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("mid-capture exposition missing %q", want)
		}
	}

	if _, err := stdin.Write(data[len(data)/2:]); err != nil {
		t.Fatal(err)
	}
	stdin.Close()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("zoomqoe: %v", err)
	}
	if strings.Count(stdout.String(), "\n") < 2 {
		t.Errorf("loss report empty after stdin capture:\n%s", stdout.String())
	}
}

// TestCLIShedAndRecoveryCountersExposed pins the continuous-operation
// counters to both surfaces: the Prometheus exposition must carry the
// shed and checkpoint-lifecycle series while a shedding, checkpointing
// tool is mid-capture, and the final status JSON must carry the
// matching fields.
func TestCLIShedAndRecoveryCountersExposed(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	pcapPath := filepath.Join(work, "meeting.pcap")
	runTool(t, bin, "zoomsim", "-o", pcapPath, "-mode", "meeting", "-duration", "20s")
	data, err := os.ReadFile(pcapPath)
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(filepath.Join(bin, "zoomqoe"),
		"-i", "-", "-what", "loss", "-workers", "2", "-shed",
		"-checkpoint", filepath.Join(work, "state.zlcp"),
		"-checkpoint-interval", "5s", "-checkpoint-delta", "1s",
		"-metrics-addr", "127.0.0.1:0")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Wait()
	defer stdin.Close()

	sc := bufio.NewScanner(stderrPipe)
	addr := ""
	var tail strings.Builder
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on http://"); i >= 0 {
			addr = strings.TrimSuffix(line[i+len("listening on http://"):], "/metrics")
			break
		}
	}
	if addr == "" {
		t.Fatalf("no listening address on stderr (scan error: %v)", sc.Err())
	}
	// Keep draining stderr so the status line survives for the final
	// assertion.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			tail.WriteString(sc.Text())
			tail.WriteByte('\n')
		}
	}()

	if _, err := stdin.Write(data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	body := scrape(t, "http://"+addr+"/metrics")
	for _, series := range []string{
		"zoomlens_shed_packets_total",
		"zoomlens_shed_bytes_total",
		"zoomlens_checkpoint_deltas_total",
		"zoomlens_checkpoint_restore_fallbacks_total",
		"zoomlens_checkpoint_tmp_cleaned_total",
		"zoomlens_report_rotations_total",
		"zoomlens_report_rotation_failures_total",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("mid-capture exposition missing %s", series)
		}
	}

	if _, err := stdin.Write(data[len(data)/2:]); err != nil {
		t.Fatal(err)
	}
	stdin.Close()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("zoomqoe: %v\n%s", err, tail.String())
	}
	<-drained
	status := lastJSONLine(t, tail.String())
	for _, key := range []string{
		"shed_packets", "shed_bytes", "checkpoints", "delta_checkpoints",
		"restore_fallbacks", "tmp_cleaned", "quarantine_dropped",
		"rotations", "rotate_failures",
	} {
		if _, ok := status[key]; !ok {
			t.Errorf("status JSON missing %q:\n%v", key, status)
		}
	}
	if n, _ := status["delta_checkpoints"].(float64); n < 1 {
		t.Errorf("delta_checkpoints = %v, want >= 1 (1s cadence over a 20s trace)", status["delta_checkpoints"])
	}
}

// TestCLIProtoCountersExposed pins the per-plugin decode counters to
// both CLI surfaces: the Prometheus exposition must carry the labeled
// zoomlens_proto_decoded_total series while a tool is mid-capture, and
// the final status JSON must report per-app decode totals matching the
// application actually on the wire.
func TestCLIProtoCountersExposed(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	pcapPath := filepath.Join(work, "webrtc.pcap")
	runTool(t, bin, "zoomsim", "-o", pcapPath, "-mode", "meeting", "-app", "webrtc", "-duration", "20s")
	data, err := os.ReadFile(pcapPath)
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(filepath.Join(bin, "zoomqoe"),
		"-i", "-", "-what", "series", "-metrics-addr", "127.0.0.1:0")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderrPipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Wait()
	defer stdin.Close()

	sc := bufio.NewScanner(stderrPipe)
	addr := ""
	var tail strings.Builder
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on http://"); i >= 0 {
			addr = strings.TrimSuffix(line[i+len("listening on http://"):], "/metrics")
			break
		}
	}
	if addr == "" {
		t.Fatalf("no listening address on stderr (scan error: %v)", sc.Err())
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for sc.Scan() {
			tail.WriteString(sc.Text())
			tail.WriteByte('\n')
		}
	}()

	if _, err := stdin.Write(data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	// Poll until the webrtc plugin's counter is visibly positive.
	var mid float64
	deadline := time.Now().Add(10 * time.Second)
	for {
		body := scrape(t, "http://"+addr+"/metrics")
		fmt.Sscanf(findLine(body, `zoomlens_proto_decoded_total{proto="webrtc"} `),
			`zoomlens_proto_decoded_total{proto="webrtc"} %g`, &mid)
		if !strings.Contains(body, `zoomlens_proto_decoded_total{proto="zoom"}`) ||
			!strings.Contains(body, "zoomlens_proto_undecodable_total") {
			t.Fatalf("exposition missing per-plugin series:\n%.2000s", body)
		}
		if mid > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if mid <= 0 {
		t.Errorf(`mid-capture zoomlens_proto_decoded_total{proto="webrtc"} never went positive`)
	}

	if _, err := stdin.Write(data[len(data)/2:]); err != nil {
		t.Fatal(err)
	}
	stdin.Close()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("zoomqoe: %v\n%s", err, tail.String())
	}
	<-drained

	status := lastJSONLine(t, tail.String())
	if n, _ := status["proto_decoded_webrtc"].(float64); n <= 0 {
		t.Errorf("status proto_decoded_webrtc = %v, want > 0:\n%v", status["proto_decoded_webrtc"], status)
	}
	if n, ok := status["proto_decoded_zoom"].(float64); !ok || n != 0 {
		t.Errorf("status proto_decoded_zoom = %v, want 0 on a webrtc-only trace", status["proto_decoded_zoom"])
	}
	for _, key := range []string{"proto_undecodable", "stun_port_nonstun"} {
		if _, ok := status[key]; !ok {
			t.Errorf("status JSON missing %q:\n%v", key, status)
		}
	}
	// The per-stream series the tool printed must be proto-tagged.
	if !strings.Contains(stdout.String(), "webrtc") {
		t.Errorf("series output lacks the webrtc proto tag:\n%.800s", stdout.String())
	}
}

// scrape GETs a metrics URL, retrying briefly (the first counters may
// land an instant after the listener).
func scrape(t *testing.T, url string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && strings.Contains(string(body), "zoomlens_packets_total") {
				return string(body)
			}
			err = rerr
		}
		if time.Now().After(deadline) {
			t.Fatalf("scraping %s: %v", url, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func findLine(body, prefix string) string {
	for _, ln := range strings.Split(body, "\n") {
		if strings.HasPrefix(ln, prefix) {
			return ln
		}
	}
	return ""
}
