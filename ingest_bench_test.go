package zoomlens

// Ingest-path benchmarks: the end-to-end hot loop from serialized pcap
// bytes through record reading and analysis. These are the numbers the
// engine refactor is accountable to — `make bench` snapshots them into
// BENCH_ingest.json so later PRs have a trajectory, and
// ingest_alloc_test.go pins the per-packet allocation count.

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"zoomlens/internal/pcap"
)

// ingestTrace lazily serializes the shared benchmark trace into
// in-memory classic pcap and pcapng captures, so the ingest benchmarks
// measure read+analyze end to end without disk noise.
var ingestTraceOnce sync.Once
var ingestTracePcapBytes []byte
var ingestTraceNGBytes []byte

func ingestTrace(tb testing.TB) (pcapBytes, ngBytes []byte) {
	tb.Helper()
	at, frames, _ := benchTrace(tb)
	ingestTraceOnce.Do(func() {
		var buf bytes.Buffer
		w, err := pcap.NewWriter(&buf, pcap.WriterOptions{Nanosecond: true})
		if err != nil {
			panic(err)
		}
		for i := range frames {
			if err := w.WriteRecord(at[i], frames[i]); err != nil {
				panic(err)
			}
		}
		ingestTracePcapBytes = buf.Bytes()

		var ngBuf bytes.Buffer
		ng, err := pcap.NewNGWriter(&ngBuf, uint16(pcap.LinkTypeEthernet))
		if err != nil {
			panic(err)
		}
		for i := range frames {
			if err := ng.WriteRecord(at[i], frames[i]); err != nil {
				panic(err)
			}
		}
		ingestTraceNGBytes = ngBuf.Bytes()
	})
	return ingestTracePcapBytes, ingestTraceNGBytes
}

// ingestReadPass drains one serialized capture with the zero-copy
// reader, returning the record count.
func ingestReadPass(raw []byte) (int, error) {
	s, err := pcap.OpenStream(bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	n := 0
	var rec pcap.Record
	for {
		err := s.NextInto(&rec)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}

// ingestAnalyzePass replays one serialized capture through an engine
// built from cfg: the same loop the internal/engine driver runs.
func ingestAnalyzePass(raw []byte, cfg Config, workers int) error {
	s, err := pcap.OpenStream(bytes.NewReader(raw))
	if err != nil {
		return err
	}
	var eng Engine
	if workers > 1 {
		eng = NewParallelAnalyzer(cfg, workers)
	} else {
		eng = NewAnalyzer(cfg)
	}
	var rec pcap.Record
	for {
		err := s.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		eng.Packet(rec.Timestamp, rec.Data)
	}
	eng.Finish()
	return nil
}

// BenchmarkIngestPath measures the three layers of the hot loop: the
// pure zero-copy record read for both formats, and the full
// read+analyze pipeline sequentially and sharded. ns/pkt and pkts/s are
// derived per-packet metrics on top of the usual per-pass numbers.
func BenchmarkIngestPath(b *testing.B) {
	raw, ngRaw := ingestTrace(b)
	_, frames, cfg := benchTrace(b)
	n := len(frames)
	var total int64
	for _, f := range frames {
		total += int64(len(f))
	}

	b.Run("read/pcap", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			got, err := ingestReadPass(raw)
			if err != nil {
				b.Fatal(err)
			}
			if got != n {
				b.Fatalf("read %d records, trace has %d", got, n)
			}
		}
		reportPerPacket(b, n)
	})
	b.Run("read/pcapng", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(total)
		for i := 0; i < b.N; i++ {
			got, err := ingestReadPass(ngRaw)
			if err != nil {
				b.Fatal(err)
			}
			if got != n {
				b.Fatalf("read %d records, trace has %d", got, n)
			}
		}
		reportPerPacket(b, n)
	})
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"analyze/seq", 1},
		{"analyze/workers4", 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(total)
			for i := 0; i < b.N; i++ {
				if err := ingestAnalyzePass(raw, cfg, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
			reportPerPacket(b, n)
		})
	}
}

// TestIngestWorkerRatioSmoke is the cheap scaling tripwire `make
// bench-smoke` runs on every CI pass: a few timed passes of the
// sequential and 4-worker engines over the shared trace, failing only if
// the parallel path falls below a conservative floor of the sequential
// throughput. The floor (0.6x) is deliberately loose — CI runners are
// noisy and often single-core, where the best the sharded engine can do
// is sequential speed minus dispatch overhead. The strict ratio gate
// (workers must win outright given real cores) lives in
// TestBenchIngestJSON, which `make bench` runs on quiet hardware.
// Enabled by BENCH_RATIO_SMOKE; a plain `go test` skips it.
func TestIngestWorkerRatioSmoke(t *testing.T) {
	if os.Getenv("BENCH_RATIO_SMOKE") == "" {
		t.Skip("BENCH_RATIO_SMOKE not set")
	}
	raw, _ := ingestTrace(t)
	_, _, cfg := benchTrace(t)

	fastest := func(workers int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if err := ingestAnalyzePass(raw, cfg, workers); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	seq := fastest(1)
	w4 := fastest(4)
	t.Logf("seq %v, workers4 %v (ratio %.2f)", seq, w4, seq.Seconds()/w4.Seconds())
	if w4.Seconds() > seq.Seconds()/0.6 {
		t.Errorf("workers4 pass took %v vs sequential %v — below the 0.6x smoke floor", w4, seq)
	}
}

// reportPerPacket adds derived per-packet metrics to a sub-benchmark
// whose unit of work is one full pass over the n-packet trace.
func reportPerPacket(b *testing.B, n int) {
	b.StopTimer()
	el := b.Elapsed()
	if b.N > 0 && el > 0 {
		b.ReportMetric(float64(el.Nanoseconds())/float64(int64(b.N)*int64(n)), "ns/pkt")
		b.ReportMetric(float64(int64(b.N)*int64(n))/el.Seconds(), "pkts/s")
	}
}

// TestBenchIngestJSON snapshots the ingest benchmarks into the file
// named by BENCH_INGEST_OUT (per-packet ns, bytes, allocs, and
// packets/sec for each variant). `make bench` sets the variable; the
// test is a no-op otherwise so plain `go test` stays fast.
func TestBenchIngestJSON(t *testing.T) {
	out := os.Getenv("BENCH_INGEST_OUT")
	if out == "" {
		t.Skip("BENCH_INGEST_OUT not set")
	}
	raw, ngRaw := ingestTrace(t)
	_, frames, cfg := benchTrace(t)
	n := len(frames)

	type row struct {
		NsPerPacket     float64 `json:"ns_per_packet"`
		BytesPerPacket  float64 `json:"bytes_per_packet"`
		AllocsPerPacket float64 `json:"allocs_per_packet"`
		PacketsPerSec   float64 `json:"packets_per_sec"`
	}
	measure := func(pass func() error) row {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := pass(); err != nil {
					b.Fatal(err)
				}
			}
		})
		perPass := float64(res.NsPerOp())
		return row{
			NsPerPacket:     perPass / float64(n),
			BytesPerPacket:  float64(res.AllocedBytesPerOp()) / float64(n),
			AllocsPerPacket: float64(res.AllocsPerOp()) / float64(n),
			PacketsPerSec:   float64(n) / (perPass / float64(time.Second.Nanoseconds())),
		}
	}

	report := map[string]any{
		"trace_packets": n,
		// Measured on the same 30 s simulated two-meeting trace immediately
		// before the zero-copy engine refactor (allocating Next(), re-parse
		// per shard, per-batch buffers), kept here as the fixed comparison
		// point for the numbers below.
		"baseline_pre_refactor": map[string]row{
			"read/pcap":        {NsPerPacket: 276.33, BytesPerPacket: 498.71, AllocsPerPacket: 1.0005, PacketsPerSec: 3_618_890},
			"read/pcapng":      {NsPerPacket: 550.69, BytesPerPacket: 1027.53, AllocsPerPacket: 3.0009, PacketsPerSec: 1_815_905},
			"analyze/seq":      {NsPerPacket: 2588.66, BytesPerPacket: 1248.67, AllocsPerPacket: 3.678, PacketsPerSec: 386_300},
			"analyze/workers4": {NsPerPacket: 3257.25, BytesPerPacket: 2436.27, AllocsPerPacket: 3.719, PacketsPerSec: 307_008},
		},
	}
	seq := measure(func() error { return ingestAnalyzePass(raw, cfg, 1) })
	w4 := measure(func() error { return ingestAnalyzePass(raw, cfg, 4) })
	report["read/pcap"] = measure(func() error { _, err := ingestReadPass(raw); return err })
	report["read/pcapng"] = measure(func() error { _, err := ingestReadPass(ngRaw); return err })
	report["analyze/seq"] = seq
	report["analyze/workers4"] = w4
	report["gomaxprocs"] = runtime.GOMAXPROCS(0)

	// Scaling gates. With real parallelism available, the sharded engine
	// must beat the sequential one outright — that is the point of the
	// worker pool. On a single-CPU host the four shard goroutines time-slice
	// one core, so the best achievable is sequential throughput minus the
	// dispatch/copy overhead; gate that overhead instead so the ratio is
	// still enforced rather than silently skipped.
	ratio := w4.PacketsPerSec / seq.PacketsPerSec
	if runtime.GOMAXPROCS(0) >= 2 {
		if ratio <= 1.0 {
			t.Errorf("analyze/workers4 (%.0f pkts/s) not faster than analyze/seq (%.0f pkts/s) with GOMAXPROCS=%d",
				w4.PacketsPerSec, seq.PacketsPerSec, runtime.GOMAXPROCS(0))
		}
	} else if ratio < 0.80 {
		t.Errorf("analyze/workers4 (%.0f pkts/s) below 80%% of analyze/seq (%.0f pkts/s) on a single CPU — dispatch overhead regressed",
			w4.PacketsPerSec, seq.PacketsPerSec)
	}
	if seq.PacketsPerSec < 600_000 {
		t.Errorf("analyze/seq at %.0f pkts/s, floor is 600k", seq.PacketsPerSec)
	}
	// Memory parity: the shard batch pool must not retain grown buffers
	// (the pre-fix parallel path sat at ~1.6x sequential bytes/packet).
	if w4.BytesPerPacket > 1.25*seq.BytesPerPacket {
		t.Errorf("analyze/workers4 at %.0f B/pkt vs seq %.0f B/pkt — batch pool retaining oversized buffers",
			w4.BytesPerPacket, seq.BytesPerPacket)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
