GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test test-short bench ablation cover tools examples ci fuzz-smoke clean

all: build test

build:
	$(GO) build ./...

tools:
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) vet ./...
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -run XXX .

ablation:
	$(GO) test -bench=Ablation -benchtime 1x -run XXX .

cover:
	$(GO) test -cover ./...

# Mirrors .github/workflows/ci.yml: the race detector matters here
# because the sharded parallel analyzer is exercised by the tests.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke FUZZTIME=10s

# Short native-fuzz runs over every packet codec: the parsers face
# hostile bytes in production, so every CI run hammers them briefly.
fuzz-smoke:
	$(GO) test -fuzz=FuzzZoomParse -fuzztime=$(FUZZTIME) ./internal/zoom/
	$(GO) test -fuzz=FuzzRTPParse -fuzztime=$(FUZZTIME) ./internal/rtp/
	$(GO) test -fuzz=FuzzSTUNParse -fuzztime=$(FUZZTIME) ./internal/stun/
	$(GO) test -fuzz=FuzzLayersParse -fuzztime=$(FUZZTIME) ./internal/layers/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/p2pdetect
	$(GO) run ./examples/validation
	$(GO) run ./examples/campus -duration 5m

clean:
	rm -rf bin
