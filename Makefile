GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test test-short bench bench-smoke ablation cover tools examples ci fuzz-smoke clean

all: build test

build:
	$(GO) build ./...

tools:
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) vet ./...
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -run XXX .

# One iteration of the pipeline benchmark: catches a broken perf
# harness without paying for a real measurement run.
bench-smoke:
	$(GO) test -run XXX -bench BenchmarkAnalyzerPipeline -benchtime 1x .

ablation:
	$(GO) test -bench=Ablation -benchtime 1x -run XXX .

cover:
	$(GO) test -cover ./...

# Mirrors the .github/workflows/ci.yml jobs (test, race, smoke) in
# sequence: the race detector matters here because the sharded parallel
# analyzer, metrics endpoint, and snapshot barrier are all concurrency.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke FUZZTIME=10s
	$(MAKE) bench-smoke

# Short native-fuzz runs over every packet codec: the parsers face
# hostile bytes in production, so every CI run hammers them briefly.
fuzz-smoke:
	$(GO) test -fuzz=FuzzZoomParse -fuzztime=$(FUZZTIME) ./internal/zoom/
	$(GO) test -fuzz=FuzzRTPParse -fuzztime=$(FUZZTIME) ./internal/rtp/
	$(GO) test -fuzz=FuzzSTUNParse -fuzztime=$(FUZZTIME) ./internal/stun/
	$(GO) test -fuzz=FuzzLayersParse -fuzztime=$(FUZZTIME) ./internal/layers/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/p2pdetect
	$(GO) run ./examples/validation
	$(GO) run ./examples/campus -duration 5m

clean:
	rm -rf bin
