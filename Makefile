GO ?= go

.PHONY: all build test test-short bench ablation cover tools examples clean

all: build test

build:
	$(GO) build ./...

tools:
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) vet ./...
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem -run XXX .

ablation:
	$(GO) test -bench=Ablation -benchtime 1x -run XXX .

cover:
	$(GO) test -cover ./...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/p2pdetect
	$(GO) run ./examples/validation
	$(GO) run ./examples/campus -duration 5m

clean:
	rm -rf bin
