GO ?= go
FUZZTIME ?= 30s

.PHONY: all build test test-short bench bench-smoke alloc-check ablation cover tools examples ci fuzz-smoke soak-smoke cluster-smoke proto-smoke qoe-smoke clean

all: build test

build:
	$(GO) build ./...

tools:
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) vet ./...
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full benchmark run; also snapshots the ingest-path numbers (ns, bytes,
# allocs, and packets/sec per packet for each reader/analyzer variant)
# into BENCH_ingest.json at the repo root, so the zero-allocation ingest
# contract has a recorded trajectory across PRs.
bench:
	$(GO) test -bench=. -benchmem -run XXX .
	BENCH_INGEST_OUT=$(CURDIR)/BENCH_ingest.json $(GO) test -count=1 -run TestBenchIngestJSON .
	BENCH_CHECKPOINT_OUT=$(CURDIR)/BENCH_checkpoint.json $(GO) test -count=1 -run TestBenchCheckpointJSON .

# One iteration of the pipeline benchmark (catches a broken perf
# harness without paying for a real measurement run) plus the
# parallel-vs-sequential throughput tripwire at its conservative smoke
# floor.
bench-smoke:
	$(GO) test -run XXX -bench BenchmarkAnalyzerPipeline -benchtime 1x .
	$(GO) test -run XXX -bench BenchmarkIngestPath -benchtime 1x .
	BENCH_RATIO_SMOKE=1 $(GO) test -count=1 -run TestIngestWorkerRatioSmoke -v .

# The ingest allocation budget, enforced: zero allocations per record in
# the zero-copy readers, bounded allocations per packet end to end.
alloc-check:
	$(GO) test -count=1 -run 'TestIngestReadAllocsZero|TestIngestAnalyzeAllocsBounded' -v .

ablation:
	$(GO) test -bench=Ablation -benchtime 1x -run XXX .

cover:
	$(GO) test -cover ./...

# Mirrors the .github/workflows/ci.yml jobs (test, race, smoke) in
# sequence: the race detector matters here because the sharded parallel
# analyzer, metrics endpoint, and snapshot barrier are all concurrency.
ci:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race ./...
	$(MAKE) fuzz-smoke FUZZTIME=10s
	$(MAKE) bench-smoke
	$(MAKE) alloc-check
	$(MAKE) cluster-smoke
	$(MAKE) proto-smoke
	$(MAKE) qoe-smoke
	$(MAKE) soak-smoke

# The cluster scale-out invariant, end to end: the in-process
# differential (splitter → pre-filtered workers → observation-log merge,
# byte-identical to a single engine at 1/2/4 workers, pcap and pcapng,
# with and without a mid-trace migration) plus the real-binary pipeline
# (zoomsplit → zoomqoe -cluster-part fleet → zoomagg, including -exec
# fan-out and a checkpoint-drain migration).
cluster-smoke:
	$(GO) test -count=1 -run 'TestClusterDifferential|TestClusterObsLogRoundTrip|TestClusterCLI' -v .

# The protocol-plugin invariants, end to end: the mixed-app campus
# differential (Zoom + standards-RTC side by side, byte-identical across
# sequential, parallel, and 2-way cluster engines, pcap and pcapng), the
# zoom-only backward-compatibility golden (-proto zoom == default set on
# a pure Zoom trace), the plugin/capture unit suites, and the CLI-level
# per-app counter exposure.
proto-smoke:
	$(GO) test -count=1 -run 'TestProtoDifferentialMixedApps|TestProtoZoomOnlyUnchanged|TestCLIProtoCountersExposed' -v .
	$(GO) test -count=1 ./internal/rtcproto/ ./internal/webrtc/
	$(GO) test -count=1 -run 'TestSTUNPortRequiresFraming|TestWebRTCEndToEnd|TestProtoPinnedToZoom|TestCheckpointOldVersionRejected' -v ./internal/core/

# The header-free QoE inference loop, end to end: the feature-row
# differentials (sequential/parallel/cluster engines byte-identical from
# pcap and pcapng, streaming == batch, checkpoint resume mid-drain), the
# train-on-one-meeting / score-a-held-out-meeting accuracy smoke, and
# the feature-layer ingest-overhead gate (≤1.10x the featureless path),
# whose numbers land in BENCH_predict.json.
qoe-smoke:
	$(GO) test -count=1 -run 'TestFeaturesPipelineDifferential|TestFeaturesStreamingVsBatch|TestFeaturesCheckpointResume|TestQoESmoke' -v .
	BENCH_PREDICT_OUT=$(CURDIR)/BENCH_predict.json $(GO) test -count=1 -run TestBenchPredictJSON -v .

# The full-shape continuous-operation soak: 100k+ concurrent streams
# with churn through the production driver on a compressed trace clock,
# gated on flat goroutines, bounded retained memory, an active delta
# checkpoint chain, and incremental checkpoints >= 5x cheaper than full
# snapshots. Snapshots the numbers into BENCH_soak.json.
soak-smoke:
	BENCH_SOAK_OUT=$(CURDIR)/BENCH_soak.json $(GO) test -count=1 -run TestBenchSoakJSON -timeout 15m -v .

# Short native-fuzz runs over every packet codec: the parsers face
# hostile bytes in production, so every CI run hammers them briefly.
# The checkpoint decoder faces hostile bytes too (a corrupt or truncated
# checkpoint file must never panic or half-restore); its target caps
# minimize time because each exec restores a full engine.
fuzz-smoke:
	$(GO) test -fuzz=FuzzZoomParse -fuzztime=$(FUZZTIME) ./internal/zoom/
	$(GO) test -fuzz=FuzzRTPParse -fuzztime=$(FUZZTIME) ./internal/rtp/
	$(GO) test -fuzz=FuzzSTUNParse -fuzztime=$(FUZZTIME) ./internal/stun/
	$(GO) test -fuzz=FuzzLayersParse -fuzztime=$(FUZZTIME) ./internal/layers/
	$(GO) test -fuzz=FuzzWebRTCParse -fuzztime=$(FUZZTIME) ./internal/webrtc/
	$(GO) test -fuzz=FuzzCheckpointRestore -fuzztime=$(FUZZTIME) -fuzzminimizetime=5s ./internal/core/
	$(GO) test -fuzz=FuzzQoSLog -fuzztime=$(FUZZTIME) ./internal/qos/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/p2pdetect
	$(GO) run ./examples/validation
	$(GO) run ./examples/campus -duration 5m

clean:
	rm -rf bin
